// Tests for the Sec. 4 performance model: the three fetch cases, the write
// pipeline, the argmin source choice, and the t_{i,f} timeline recurrence.

#include <gtest/gtest.h>

#include <cmath>

#include "core/perf_model.hpp"
#include "tiers/params.hpp"
#include "util/units.hpp"

namespace nopfs::core {
namespace {

tiers::SystemParams test_system() {
  tiers::SystemParams sys;
  sys.name = "test";
  sys.num_workers = 4;
  sys.node.network_mbps = 1000.0;  // b_c
  sys.node.compute_mbps = 50.0;    // c
  sys.node.preprocess_mbps = 200.0;  // beta
  sys.node.staging.capacity_mb = 64.0;
  sys.node.staging.prefetch_threads = 4;
  sys.node.staging.read_mbps = util::ThroughputCurve({{0, 0}, {4, 8000}});
  sys.node.staging.write_mbps = util::ThroughputCurve({{0, 0}, {4, 8000}});
  tiers::StorageClassParams ram;
  ram.name = "ram";
  ram.capacity_mb = 1024.0;
  ram.prefetch_threads = 2;
  ram.read_mbps = util::ThroughputCurve({{0, 0}, {2, 4000}});  // r1(2)=4000
  ram.write_mbps = ram.read_mbps;
  tiers::StorageClassParams ssd;
  ssd.name = "ssd";
  ssd.capacity_mb = 8192.0;
  ssd.prefetch_threads = 2;
  ssd.read_mbps = util::ThroughputCurve({{0, 0}, {2, 400}});  // r2(2)=400
  ssd.write_mbps = ssd.read_mbps;
  sys.node.classes = {ram, ssd};
  sys.pfs.agg_read_mbps = util::ThroughputCurve({{1, 100}, {2, 150}, {4, 200}});
  return sys;
}

TEST(PerfModel, PfsCaseMatchesFormula) {
  const PerfModel model(test_system());
  // fetch = s / (t(gamma)/gamma): 10 MB with gamma=4 -> 10 / (200/4) = 0.2 s.
  EXPECT_NEAR(model.fetch_pfs_s(10.0, 4), 0.2, 1e-12);
  EXPECT_NEAR(model.fetch_pfs_s(10.0, 1), 0.1, 1e-12);
  // Contention: per-client rate falls with gamma.
  EXPECT_GT(model.pfs_client_mbps(1), model.pfs_client_mbps(4));
}

TEST(PerfModel, LocalCaseMatchesFormula) {
  const PerfModel model(test_system());
  // r1(p1)/p1 = 4000/2 = 2000 MB/s -> 10 MB = 5 ms.
  EXPECT_NEAR(model.fetch_local_s(10.0, 0), 10.0 / 2000.0, 1e-12);
  // r2(p2)/p2 = 200 MB/s.
  EXPECT_NEAR(model.fetch_local_s(10.0, 1), 10.0 / 200.0, 1e-12);
}

TEST(PerfModel, RemoteCaseCapsAtNetwork) {
  const PerfModel model(test_system());
  // min(b_c, r1/p1) = min(1000, 2000) = 1000 MB/s.
  EXPECT_NEAR(model.fetch_remote_s(10.0, 0), 10.0 / 1000.0, 1e-12);
  // min(1000, 200) = 200: the slow class, not the network, limits.
  EXPECT_NEAR(model.fetch_remote_s(10.0, 1), 10.0 / 200.0, 1e-12);
}

TEST(PerfModel, WriteIsMaxOfPreprocessAndStore) {
  const PerfModel model(test_system());
  // beta = 200 MB/s; w0(p0)/p0 = 2000 MB/s -> preprocess dominates.
  EXPECT_NEAR(model.write_s(10.0), 10.0 / 200.0, 1e-12);
}

TEST(PerfModel, ComputeTime) {
  const PerfModel model(test_system());
  EXPECT_NEAR(model.compute_s(25.0), 0.5, 1e-12);
}

TEST(PerfModel, InvalidClassYieldsInfinity) {
  const PerfModel model(test_system());
  EXPECT_TRUE(std::isinf(model.fetch_local_s(1.0, -1)));
  EXPECT_TRUE(std::isinf(model.fetch_local_s(1.0, 99)));
  EXPECT_TRUE(std::isinf(model.fetch_remote_s(1.0, -1)));
}

TEST(PerfModel, ChooseFetchPicksFastestApplicable) {
  const PerfModel model(test_system());
  // Local RAM (2000 MB/s) beats remote (1000) beats PFS (50 at gamma=4).
  const FetchChoice local = model.choose_fetch(10.0, 0, 0, 1, 4);
  EXPECT_EQ(local.source, FetchSource::kLocal);
  EXPECT_EQ(local.storage_class, 0);

  const FetchChoice remote = model.choose_fetch(10.0, -1, 0, 1, 4);
  EXPECT_EQ(remote.source, FetchSource::kRemote);
  EXPECT_EQ(remote.peer, 1);

  const FetchChoice pfs = model.choose_fetch(10.0, -1, -1, -1, 4);
  EXPECT_EQ(pfs.source, FetchSource::kPfs);
}

TEST(PerfModel, ChooseFetchPrefersPfsOverSlowRemote) {
  // If the remote class is slower than an uncontended PFS, read the PFS —
  // the paper's argmin over all applicable cases.
  tiers::SystemParams sys = test_system();
  sys.pfs.agg_read_mbps = util::ThroughputCurve({{1, 5000}, {4, 5000}});
  const PerfModel model(sys);
  const FetchChoice choice = model.choose_fetch(10.0, -1, 1, 2, 1);
  // PFS at 5000 MB/s beats remote SSD at 200 MB/s.
  EXPECT_EQ(choice.source, FetchSource::kPfs);
}

TEST(PerfModel, LocalSsdVsRemoteRam) {
  // The paper's key observation: remote RAM over a fast network can beat a
  // local SSD.
  const PerfModel model(test_system());
  const FetchChoice choice = model.choose_fetch(10.0, /*local=*/1, /*remote=*/0,
                                                /*peer=*/2, /*gamma=*/4);
  EXPECT_EQ(choice.source, FetchSource::kRemote);  // 1000 MB/s > 200 MB/s
}

TEST(Timeline, ComputeBoundWhenReadsFree) {
  const std::vector<double> sizes = {10.0, 10.0, 10.0};
  const std::vector<double> reads = {0.0, 0.0, 0.0};
  const TimelineResult r = evaluate_timeline(sizes, reads, 50.0, 4);
  EXPECT_NEAR(r.total_s, 3 * 10.0 / 50.0, 1e-12);
  EXPECT_NEAR(r.stall_s, 0.0, 1e-12);
  EXPECT_NEAR(r.compute_s, 0.6, 1e-12);
}

TEST(Timeline, IoBoundWhenReadsSlow) {
  // Each read takes 1 s with p0=1; compute is 0.2 s/sample: avail dominates.
  const std::vector<double> sizes = {10.0, 10.0, 10.0};
  const std::vector<double> reads = {1.0, 1.0, 1.0};
  const TimelineResult r = evaluate_timeline(sizes, reads, 50.0, 1);
  // t_1 = 1, t_2 = 2, t_3 = 3, plus final compute 0.2.
  EXPECT_NEAR(r.total_s, 3.2, 1e-12);
  EXPECT_GT(r.stall_s, 0.0);
}

TEST(Timeline, MoreStagingThreadsReduceStall) {
  const std::vector<double> sizes(64, 10.0);
  const std::vector<double> reads(64, 0.5);
  const TimelineResult one = evaluate_timeline(sizes, reads, 50.0, 1);
  const TimelineResult four = evaluate_timeline(sizes, reads, 50.0, 4);
  EXPECT_LT(four.total_s, one.total_s);
  EXPECT_LT(four.stall_s, one.stall_s);
}

TEST(Timeline, HandComputedRecurrence) {
  // p0=1, c=10 MB/s. sizes 10,20; reads 0.5,0.1.
  // avail_1=0.5, t_1=max(0.5, 0)=0.5; compute_1=1.0
  // avail_2=0.6, t_2=max(0.6, 0.5+1.0)=1.5; compute_2=2.0 -> total 3.5.
  const std::vector<double> sizes = {10.0, 20.0};
  const std::vector<double> reads = {0.5, 0.1};
  const TimelineResult r = evaluate_timeline(sizes, reads, 10.0, 1);
  EXPECT_NEAR(r.total_s, 3.5, 1e-12);
  EXPECT_NEAR(r.stall_s, 0.5, 1e-12);
}

TEST(Timeline, LengthMismatchThrows) {
  EXPECT_THROW(
      (void)evaluate_timeline(std::vector<double>{1.0}, std::vector<double>{}, 1.0, 1),
      std::invalid_argument);
}

TEST(PerfModel, FetchSourceNames) {
  EXPECT_STREQ(to_string(FetchSource::kLocal), "local");
  EXPECT_STREQ(to_string(FetchSource::kRemote), "remote");
  EXPECT_STREQ(to_string(FetchSource::kPfs), "pfs");
  EXPECT_STREQ(to_string(FetchSource::kStaging), "staging");
}

}  // namespace
}  // namespace nopfs::core
