// Unit and property tests for the deterministic PRNG stack (util/rng.hpp).
// Clairvoyance depends on bit-exact reproducibility, so determinism is the
// headline property here.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "util/rng.hpp"

namespace nopfs::util {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, LongJumpChangesStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, UniformBelowIsRoughlyUniform) {
  Rng rng(42);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_below(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(2024);
  constexpr int kDraws = 200'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(77);
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ForStreamIndependence) {
  Rng a = Rng::for_stream(42, 0);
  Rng b = Rng::for_stream(42, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForStreamDeterministic) {
  Rng a = Rng::for_stream(42, 3);
  Rng b = Rng::for_stream(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

// Property sweep: every shuffle is a permutation, and replaying the seed
// reproduces it exactly.
class ShuffleProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShuffleProperty, IsPermutation) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  const auto indices = shuffled_indices(n, rng);
  ASSERT_EQ(indices.size(), n);
  std::vector<std::uint64_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
}

TEST_P(ShuffleProperty, DeterministicReplay) {
  const std::size_t n = GetParam();
  Rng a(2000 + n);
  Rng b(2000 + n);
  EXPECT_EQ(shuffled_indices(n, a), shuffled_indices(n, b));
}

TEST_P(ShuffleProperty, DifferentSeedsDifferentOrder) {
  const std::size_t n = GetParam();
  if (n < 8) GTEST_SKIP() << "tiny permutations can collide";
  Rng a(1);
  Rng b(2);
  EXPECT_NE(shuffled_indices(n, a), shuffled_indices(n, b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShuffleProperty,
                         ::testing::Values(0, 1, 2, 3, 10, 100, 1000, 10000));

TEST(Shuffle, UniformityOfFirstElement) {
  // Fisher-Yates must place each element first with equal probability.
  constexpr std::size_t kN = 8;
  constexpr int kTrials = 80'000;
  int first_counts[kN] = {};
  Rng rng(31337);
  for (int t = 0; t < kTrials; ++t) {
    const auto perm = shuffled_indices(kN, rng);
    ++first_counts[perm[0]];
  }
  for (int c : first_counts) {
    EXPECT_NEAR(c, kTrials / static_cast<int>(kN), kTrials / kN * 0.1);
  }
}

}  // namespace
}  // namespace nopfs::util
