// Tests for the distributed work-stealing sweep service (DESIGN.md
// Sec. 10): the new wire frames round-trip bit-exactly, the scheduler's
// guided grants cover the grid exactly once (with idempotent duplicate
// folds at the tail), checkpoints survive a round-trip and reject foreign
// grids, a 1-rank service run is bit-identical to the local SweepRunner,
// a 3-rank socket world matches the serial digest, and an interrupted
// sweep resumes bit-identically without re-executing any completed cell.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_transport.hpp"
#include "net/wire.hpp"
#include "sim/sweep_service.hpp"
#include "sim_result_testutil.hpp"
#include "tiers/params.hpp"

namespace nopfs::sim {
namespace {

namespace wire = net::wire;

/// A fully-populated synthetic SimResult that is a pure function of `i` —
/// every codec field nonzero and cell-dependent, so a swapped or truncated
/// field cannot cancel out in the comparisons below.
SimResult cell_result(std::uint64_t i) {
  SimResult r;
  r.policy = "cell-" + std::to_string(i);
  r.dataset = "synthetic";
  r.supported = (i % 7) != 3;
  r.unsupported_reason = r.supported ? "" : "unsupported cell " + std::to_string(i);
  r.total_s = 1.5 * static_cast<double>(i) + 0.25;
  r.prestage_s = 0.125 * static_cast<double>(i);
  r.stall_s = 0.0625 * static_cast<double>(i) + 0.5;
  r.compute_s = 2.0 + static_cast<double>(i);
  r.epoch_s = {0.5 + static_cast<double>(i), 0.25 * static_cast<double>(i)};
  r.batch_s_epoch0 = {0.125, static_cast<double>(i) + 0.75};
  r.batch_s_rest = {0.03125 * static_cast<double>(i)};
  for (int l = 0; l < static_cast<int>(Location::kCount); ++l) {
    r.location_s[l] = 0.5 * static_cast<double>(i) + l;
    r.location_count[l] = 3 * i + static_cast<std::uint64_t>(l);
    r.location_mb[l] = 0.75 * static_cast<double>(i) + l;
  }
  r.accessed_fraction = static_cast<double>(i % 100) / 100.0;
  return r;
}

std::vector<SimResult> direct_results(std::uint64_t n) {
  std::vector<SimResult> results;
  results.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) results.push_back(cell_result(i));
  return results;
}

std::string temp_checkpoint(const char* tag) {
  return std::string(::testing::TempDir()) + "sweep_ck_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

// ---------------------------------------------------------------------------
// Wire frames

TEST(SweepWire, PullGrantDoneRoundTrip) {
  const wire::SweepPull pull = wire::decode_sweep_pull(
      wire::encode_sweep_pull({0xFEEDBEEFu}));
  EXPECT_EQ(pull.seq, 0xFEEDBEEFu);

  const wire::SweepGrant grant = wire::decode_sweep_grant(
      wire::encode_sweep_grant({7u, 0xAABBCCDDEEFF0011ull, 42u}));
  EXPECT_EQ(grant.seq, 7u);
  EXPECT_EQ(grant.first, 0xAABBCCDDEEFF0011ull);
  EXPECT_EQ(grant.count, 42u);

  const wire::SweepDone done =
      wire::decode_sweep_done(wire::encode_sweep_done({31u}));
  EXPECT_EQ(done.seq, 31u);
}

TEST(SweepWire, DecodersThrowOnTruncationAndTrailingBytes) {
  EXPECT_THROW((void)wire::decode_sweep_pull({1, 2}), std::runtime_error);
  EXPECT_THROW((void)wire::decode_sweep_grant({1, 2, 3}), std::runtime_error);
  std::vector<std::uint8_t> grant = wire::encode_sweep_grant({1, 2, 3});
  grant.push_back(0);  // trailing garbage
  EXPECT_THROW((void)wire::decode_sweep_grant(grant), std::runtime_error);
  std::vector<std::uint8_t> batch =
      wire::encode_sweep_result_batch({1, 0, {cell_result(5)}});
  batch.pop_back();  // truncated result
  EXPECT_THROW((void)wire::decode_sweep_result_batch(batch), std::runtime_error);
}

TEST(SweepWire, SimResultCodecIsBitExact) {
  for (const std::uint64_t i : {0ull, 3ull, 17ull}) {
    const SimResult original = cell_result(i);
    const SimResult decoded =
        wire::decode_sim_result(wire::encode_sim_result(original));
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_results_identical(original, decoded);
    // The testutil digest is field-order-sensitive too: equal digests are
    // the same currency test_scenario pins golden results with.
    EXPECT_EQ(fnv_digest(original), fnv_digest(decoded));
  }
}

TEST(SweepWire, ResultBatchRoundTrip) {
  wire::SweepResultBatch batch;
  batch.seq = 9;
  batch.first = 12;
  batch.results = {cell_result(12), cell_result(13), cell_result(14)};
  const wire::SweepResultBatch decoded =
      wire::decode_sweep_result_batch(wire::encode_sweep_result_batch(batch));
  EXPECT_EQ(decoded.seq, 9u);
  EXPECT_EQ(decoded.first, 12u);
  ASSERT_EQ(decoded.results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    expect_results_identical(batch.results[i], decoded.results[i]);
  }
}

TEST(SweepWire, HeaderAcceptsSweepTypesAndStillRejectsRetired11) {
  std::uint8_t raw[wire::kHeaderBytes];
  for (const wire::MsgType type :
       {wire::MsgType::kSweepPull, wire::MsgType::kSweepResult,
        wire::MsgType::kSweepGrant, wire::MsgType::kSweepDone}) {
    wire::encode_header(raw, type, 5, 0);
    EXPECT_EQ(wire::decode_header(raw).type, type);
  }
  // Type 11 (the retired unary-contention kPfsGamma numbering) stays a
  // hole in the accepted range: sweep frames start at 12.
  wire::encode_header(raw, static_cast<wire::MsgType>(11), 0, 0);
  EXPECT_THROW((void)wire::decode_header(raw), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Grant sizing + scheduler

TEST(SweepGrantSize, ShrinksTowardTheTail) {
  // Half the fair share of what remains: large up front, min_grant at the
  // tail, always in [1, remaining].
  EXPECT_EQ(sweep_grant_size(1000, 4), 125u);
  EXPECT_EQ(sweep_grant_size(16, 4), 2u);
  EXPECT_EQ(sweep_grant_size(7, 4), 1u);   // fair share 0 -> min_grant
  EXPECT_EQ(sweep_grant_size(1, 4), 1u);
  EXPECT_EQ(sweep_grant_size(0, 4), 0u);
  EXPECT_EQ(sweep_grant_size(100, 1), 50u);
  EXPECT_EQ(sweep_grant_size(16, 4, 8), 8u);   // min_grant floor
  EXPECT_EQ(sweep_grant_size(5, 4, 8), 5u);    // clamped to remaining
  EXPECT_EQ(sweep_grant_size(10, 0), 5u);      // workers clamped to >= 1
}

TEST(SweepScheduler, GrantsCoverGridOnceThenRegrantOutstanding) {
  SweepScheduler scheduler(20, 0x5157u, {}, 2);
  std::vector<SweepScheduler::Range> granted;
  std::uint64_t covered = 0;
  while (covered < 20) {
    const auto range = scheduler.grant();
    ASSERT_GT(range.count, 0u);
    EXPECT_EQ(range.first, covered);  // contiguous, in order, no overlap
    covered += range.count;
    granted.push_back(range);
  }
  // Everything granted, nothing submitted: the tail re-grants the OLDEST
  // outstanding range first, rotating so successive pulls speculate on
  // different ranges.
  const auto regrant1 = scheduler.grant();
  EXPECT_EQ(regrant1.first, granted[0].first);
  EXPECT_EQ(regrant1.count, granted[0].count);
  const auto regrant2 = scheduler.grant();
  EXPECT_EQ(regrant2.first, granted[1].first);

  for (const auto& range : granted) {
    std::vector<SimResult> results;
    for (std::uint64_t i = range.first; i < range.first + range.count; ++i) {
      results.push_back(cell_result(i));
    }
    scheduler.submit(range.first, std::move(results));
  }
  EXPECT_TRUE(scheduler.done());
  EXPECT_EQ(scheduler.completed_cells(), 20u);
  EXPECT_EQ(scheduler.duplicate_cells(), 0u);
  EXPECT_EQ(scheduler.grant().count, 0u);  // done: stop pulling
}

TEST(SweepScheduler, DuplicateSubmitsFoldIdempotently) {
  SweepScheduler scheduler(6, 1, {}, 2);
  const auto a = scheduler.grant();
  ASSERT_GT(a.count, 0u);
  std::vector<SimResult> results;
  for (std::uint64_t i = a.first; i < a.first + a.count; ++i) {
    results.push_back(cell_result(i));
  }
  scheduler.submit(a.first, results);
  const std::uint64_t before = scheduler.completed_cells();
  scheduler.submit(a.first, results);  // duplicated frame: first write won
  EXPECT_EQ(scheduler.completed_cells(), before);
  EXPECT_EQ(scheduler.duplicate_cells(), a.count);
  EXPECT_THROW(scheduler.submit(5, direct_results(4)), std::runtime_error);
}

TEST(SweepScheduler, SequenceGuardsAreMonotonePerSender) {
  SweepScheduler scheduler(4, 1, {}, 3);
  EXPECT_TRUE(scheduler.advance_pull_seq(1, 1));
  EXPECT_FALSE(scheduler.advance_pull_seq(1, 1));  // replay
  EXPECT_FALSE(scheduler.advance_pull_seq(1, 0));  // stale
  EXPECT_TRUE(scheduler.advance_pull_seq(1, 5));   // gaps allowed
  EXPECT_TRUE(scheduler.advance_pull_seq(2, 1));   // independent per sender
  // Pulls and result batches are independent streams.
  EXPECT_TRUE(scheduler.advance_result_seq(1, 1));
  EXPECT_FALSE(scheduler.advance_result_seq(1, 1));
  EXPECT_FALSE(scheduler.advance_pull_seq(5, 1));   // out-of-world sender
  EXPECT_FALSE(scheduler.advance_result_seq(-1, 1));
}

// ---------------------------------------------------------------------------
// Checkpoint

TEST(SweepCheckpoint, RoundTripRestoresCompletedCells) {
  const std::string path = temp_checkpoint("roundtrip");
  std::remove(path.c_str());
  SweepServiceOptions options;
  options.checkpoint_path = path;

  SweepScheduler writer(10, 0xABCDu, options, 1);
  writer.submit(2, {cell_result(2), cell_result(3), cell_result(4)});
  writer.submit(7, {cell_result(7)});
  writer.checkpoint_now();

  SweepScheduler reader(10, 0xABCDu, options, 1);
  EXPECT_EQ(reader.load_checkpoint(), 4u);
  EXPECT_EQ(reader.restored_cells(), 4u);
  EXPECT_EQ(reader.completed_cells(), 4u);
  // Restored cells are never granted again: the grants that remain cover
  // exactly the other six.
  std::vector<bool> granted(10, false);
  for (;;) {
    const auto range = reader.grant();
    if (range.count == 0) break;
    std::vector<SimResult> results;
    for (std::uint64_t i = range.first; i < range.first + range.count; ++i) {
      EXPECT_FALSE(granted[static_cast<std::size_t>(i)]);
      granted[static_cast<std::size_t>(i)] = true;
      results.push_back(cell_result(i));
    }
    reader.submit(range.first, std::move(results));
  }
  for (const std::uint64_t done : {2u, 3u, 4u, 7u}) {
    EXPECT_FALSE(granted[done]) << "restored cell " << done << " re-granted";
  }
  EXPECT_TRUE(reader.done());
  // The restored + re-run grid is bit-identical to a direct evaluation.
  const auto results = reader.take_results();
  const auto expected = direct_results(10);
  for (std::size_t i = 0; i < 10; ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_results_identical(results[i], expected[i]);
  }
  std::remove(path.c_str());
}

TEST(SweepCheckpoint, RejectsForeignGridAndStartsFreshWhenMissing) {
  const std::string path = temp_checkpoint("foreign");
  std::remove(path.c_str());
  SweepServiceOptions options;
  options.checkpoint_path = path;

  SweepScheduler fresh(10, 0xABCDu, options, 1);
  EXPECT_EQ(fresh.load_checkpoint(), 0u);  // missing file: fresh start

  SweepScheduler writer(10, 0xABCDu, options, 1);
  writer.submit(0, {cell_result(0)});
  writer.checkpoint_now();

  SweepScheduler other_signature(10, 0x9999u, options, 1);
  EXPECT_THROW((void)other_signature.load_checkpoint(), std::runtime_error);
  SweepScheduler other_total(11, 0xABCDu, options, 1);
  EXPECT_THROW((void)other_total.load_checkpoint(), std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Service runs

TEST(SweepService, OneRankMatchesLocalSweepRunnerBitForBit) {
  // A real simulator grid through the 1-rank service vs the plain runner:
  // the scheduler path must not perturb a single bit of any cell.
  const data::Dataset dataset("svc-test", std::vector<float>(1024, 0.1f));
  std::vector<SweepPoint> points;
  for (const int workers : {2, 4}) {
    for (const char* policy : {"staging", "nopfs", "locality-aware"}) {
      SweepPoint point;
      point.config.system = tiers::presets::sim_cluster(workers);
      point.config.num_epochs = 2;
      point.config.per_worker_batch = 8;
      point.config.seed = 4242;
      point.dataset = &dataset;
      point.policy = policy;
      points.push_back(std::move(point));
    }
  }
  const SweepRunner runner({2});
  const auto expected = runner.run(points);
  const SweepServiceReport report = run_sweep_service(nullptr, points, {});
  ASSERT_EQ(report.results.size(), points.size());
  EXPECT_EQ(report.stats.completed_cells, points.size());
  EXPECT_EQ(report.stats.executed_cells, points.size());
  EXPECT_EQ(report.stats.duplicate_cells, 0u);
  EXPECT_FALSE(report.stats.interrupted);
  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i) + " (" + points[i].policy + ")");
    expect_results_identical(report.results[i], expected[i]);
  }
  EXPECT_EQ(sweep_results_digest(report.results), sweep_results_digest(expected));
}

TEST(SweepService, ThreeRankSocketWorldMatchesSerialDigest) {
  constexpr std::uint64_t kCells = 30;
  constexpr int kWorld = 3;
  const std::uint64_t signature = 0x515701u;
  const std::uint16_t port = net::pick_free_port();
  // A slow-ish pure cell so workers actually win grants from rank 0
  // (without it rank 0 can drain the grid before a worker's first pull).
  const auto evaluate = [](std::uint64_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return cell_result(i);
  };

  std::vector<SweepServiceReport> reports(kWorld);
  std::vector<std::string> errors(kWorld);
  std::vector<std::thread> ranks;
  for (int r = 0; r < kWorld; ++r) {
    ranks.emplace_back([&, r] {
      try {
        net::SocketOptions options;
        options.rank = r;
        options.world_size = kWorld;
        options.rendezvous_port = port;
        options.timeout_s = 60.0;
        net::SocketTransport transport(options);
        SweepServiceOptions service;
        service.num_threads = 1;
        reports[static_cast<std::size_t>(r)] = run_sweep_service(
            &transport, kCells, evaluate, signature, service);
      } catch (const std::exception& ex) {
        errors[static_cast<std::size_t>(r)] = ex.what();
      }
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_EQ(errors[static_cast<std::size_t>(r)], "") << "rank " << r;
  }

  const SweepServiceReport& root = reports[0];
  EXPECT_EQ(root.stats.completed_cells, kCells);
  EXPECT_FALSE(root.stats.interrupted);
  ASSERT_EQ(root.results.size(), kCells);
  // Workers hold no results; their executed cells (plus rank 0's) cover the
  // grid, possibly more than once via tail speculation.
  std::uint64_t executed = 0;
  for (const auto& report : reports) {
    executed += report.stats.executed_cells;
  }
  EXPECT_GE(executed, kCells);
  EXPECT_EQ(executed, kCells + root.stats.duplicate_cells);
  EXPECT_TRUE(reports[1].results.empty());
  EXPECT_TRUE(reports[2].results.empty());

  const auto expected = direct_results(kCells);
  EXPECT_EQ(sweep_results_digest(root.results), sweep_results_digest(expected));
  for (std::size_t i = 0; i < kCells; ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_results_identical(root.results[i], expected[i]);
  }
}

TEST(SweepService, InterruptThenResumeIsBitIdenticalWithZeroReexecution) {
  constexpr std::uint64_t kCells = 24;
  const std::string path = temp_checkpoint("resume");
  std::remove(path.c_str());

  // Per-cell execution counters: the resume contract is that no cell
  // completed before the "kill" ever runs again.
  std::vector<std::atomic<int>> executions(kCells);
  const auto evaluate = [&executions](std::uint64_t i) {
    executions[static_cast<std::size_t>(i)].fetch_add(1,
                                                      std::memory_order_relaxed);
    return cell_result(i);
  };

  SweepServiceOptions options;
  options.num_threads = 1;
  options.checkpoint_path = path;
  options.checkpoint_every_cells = 4;
  options.interrupt_after_cells = 9;  // the deterministic mid-sweep "kill"
  const SweepServiceReport interrupted =
      run_sweep_service(nullptr, kCells, evaluate, 0x515702u, options);
  EXPECT_TRUE(interrupted.stats.interrupted);
  EXPECT_GE(interrupted.stats.completed_cells, 9u);
  EXPECT_LT(interrupted.stats.completed_cells, kCells);
  const std::uint64_t first_run = interrupted.stats.completed_cells;

  options.interrupt_after_cells = 0;
  options.resume = true;
  const SweepServiceReport resumed =
      run_sweep_service(nullptr, kCells, evaluate, 0x515702u, options);
  EXPECT_FALSE(resumed.stats.interrupted);
  EXPECT_EQ(resumed.stats.restored_cells, first_run);
  EXPECT_EQ(resumed.stats.completed_cells, kCells);
  EXPECT_EQ(resumed.stats.executed_cells, kCells - first_run);

  // Zero re-execution: every cell ran exactly once across both runs.
  for (std::uint64_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(executions[static_cast<std::size_t>(i)].load(), 1)
        << "cell " << i << " re-executed after the checkpoint";
  }
  // And the stitched grid is bit-identical to an uninterrupted evaluation.
  const auto expected = direct_results(kCells);
  ASSERT_EQ(resumed.results.size(), kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_results_identical(resumed.results[i], expected[i]);
  }
  EXPECT_EQ(sweep_results_digest(resumed.results),
            sweep_results_digest(expected));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nopfs::sim
