// Fault-injection and elastic-membership tests (DESIGN.md Sec. 11):
//
//   * FaultPlan helpers, validation, and the byte-explicit codec (trailing
//     bytes rejected, truncation throws);
//   * the three injection seams hold the pinned recovery invariant —
//     the delivered-sample digest of a faulted run is bit-identical to the
//     fault-free run (stragglers, dropped connections, slow-PFS bursts);
//   * FaultTransport and the incremental cache-plan rebalance behave
//     deterministically at the unit level;
//   * elastic sweep worlds: a late joiner just starts pulling, a worker
//     dying mid-sweep (abandon_after_pulls) never perturbs the results
//     digest, and a dead rank's gamma contribution drains to zero.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/cache_policy.hpp"
#include "net/fault_transport.hpp"
#include "net/socket_transport.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/harness.hpp"
#include "scenario/fault_plan.hpp"
#include "scenario/scenario.hpp"
#include "sim/sweep_service.hpp"

namespace nopfs {
namespace {

using scenario::FaultPlan;

FaultPlan full_plan() {
  FaultPlan plan;
  plan.stragglers = {{1, 2.0}, {1, 1.5}, {3, 4.0}};
  plan.drops = {{0, 0.25, 0.75}, {2, 1.0, 2.0}};
  plan.pfs_bursts = {{0.5, 1.5, 3.0}, {1.0, 2.0, 2.0}};
  plan.membership = {{2, 0.0, 1.0}, {4, 0.5, -1.0}};
  return plan;
}

// ---------------------------------------------------------------------------
// FaultPlan helpers / validation / codec

TEST(FaultPlan, HelpersCombineEntriesDeterministically) {
  const FaultPlan plan = full_plan();
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(FaultPlan{}.empty());

  // Straggler factors multiply per rank; healthy ranks stay at 1.
  EXPECT_DOUBLE_EQ(plan.straggler_factor(1), 3.0);
  EXPECT_DOUBLE_EQ(plan.straggler_factor(3), 4.0);
  EXPECT_DOUBLE_EQ(plan.straggler_factor(0), 1.0);

  // Drop windows are per rank, half-open [start, end).
  EXPECT_FALSE(plan.connection_down(0, 0.0));
  EXPECT_TRUE(plan.connection_down(0, 0.25));
  EXPECT_TRUE(plan.connection_down(0, 0.5));
  EXPECT_FALSE(plan.connection_down(0, 0.75));
  EXPECT_FALSE(plan.connection_down(1, 0.5));
  EXPECT_TRUE(plan.connection_down(2, 1.5));

  // Burst derate is the max over active windows.
  EXPECT_DOUBLE_EQ(plan.pfs_derate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.pfs_derate(0.5), 3.0);
  EXPECT_DOUBLE_EQ(plan.pfs_derate(1.25), 3.0);  // both active, max wins
  EXPECT_DOUBLE_EQ(plan.pfs_derate(1.75), 2.0);
  EXPECT_DOUBLE_EQ(plan.pfs_derate(2.5), 1.0);
}

TEST(FaultPlan, ValidationCatchesEveryBadEntry) {
  EXPECT_TRUE(scenario::validate_fault_plan(full_plan(), 4).empty());

  FaultPlan bad;
  bad.stragglers = {{0, 0.5}};      // factor < 1
  bad.drops = {{1, 2.0, 1.0}};      // empty window
  bad.pfs_bursts = {{0.0, 1.0, 0.5}};  // derate < 1
  bad.membership = {{2, 1.0, 0.5}};    // leaves before joining
  const auto problems = scenario::validate_fault_plan(bad, 2);
  EXPECT_GE(problems.size(), 4u);

  // Stragglers and drops are bounded by the world; membership ranks may
  // exceed it (late joiners extend the world).
  FaultPlan out_of_world;
  out_of_world.stragglers = {{5, 2.0}};
  EXPECT_FALSE(scenario::validate_fault_plan(out_of_world, 2).empty());
  FaultPlan joiner;
  joiner.membership = {{5, 0.5, -1.0}};
  EXPECT_TRUE(scenario::validate_fault_plan(joiner, 2).empty());
}

TEST(FaultPlan, CodecRoundTripsAndRejectsTrailingBytes) {
  const FaultPlan plan = full_plan();
  const std::vector<std::uint8_t> bytes = scenario::encode_fault_plan(plan);
  EXPECT_EQ(scenario::decode_fault_plan(bytes), plan);

  const FaultPlan empty;
  EXPECT_EQ(scenario::decode_fault_plan(scenario::encode_fault_plan(empty)),
            empty);

  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW((void)scenario::decode_fault_plan(trailing), std::runtime_error);

  std::vector<std::uint8_t> truncated = bytes;
  truncated.pop_back();
  EXPECT_THROW((void)scenario::decode_fault_plan(truncated),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// FaultTransport (unit): drops are windowed, everything else forwards

class FakeTransport final : public net::Transport {
 public:
  [[nodiscard]] int rank() const override { return 1; }
  [[nodiscard]] int world_size() const override { return 2; }
  std::vector<net::Bytes> allgather(net::Bytes local) override {
    return {local, local};
  }
  void barrier() override {}
  void set_serve_handler(ServeHandler) override {}
  std::optional<net::Bytes> fetch_sample(int, std::uint64_t id) override {
    ++fetches;
    return net::Bytes{static_cast<std::uint8_t>(id)};
  }
  void publish_watermark(std::uint64_t position) override {
    watermark = position;
  }
  [[nodiscard]] std::uint64_t watermark_of(int) const override {
    return watermark;
  }
  [[nodiscard]] double transferred_mb() const override { return 0.0; }

  int fetches = 0;
  std::uint64_t watermark = 0;
};

TEST(FaultTransport, DropsFetchesInsideTheWindowOnly) {
  FakeTransport inner;

  // Window covering the decorator's whole lifetime: every fetch misses
  // without ever reaching the inner transport's serve path.
  FaultPlan always;
  always.drops = {{1, 0.0, 1.0e9}};
  net::FaultTransport down(inner, always, 1.0);
  EXPECT_FALSE(down.fetch_sample(0, 7).has_value());
  EXPECT_FALSE(down.fetch_sample(0, 8).has_value());
  EXPECT_EQ(down.dropped_fetches(), 2u);
  EXPECT_EQ(inner.fetches, 0);

  // Window that never opens in this test's lifetime: forwards untouched.
  FaultPlan never;
  never.drops = {{1, 1.0e9, 2.0e9}};
  net::FaultTransport up(inner, never, 1.0);
  const auto bytes = up.fetch_sample(0, 7);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ((*bytes)[0], 7);
  EXPECT_EQ(up.dropped_fetches(), 0u);
  EXPECT_EQ(inner.fetches, 1);

  // A drop scripted for ANOTHER rank does not touch this one.
  FaultPlan other;
  other.drops = {{0, 0.0, 1.0e9}};
  net::FaultTransport unaffected(inner, other, 1.0);
  EXPECT_TRUE(unaffected.fetch_sample(0, 9).has_value());

  // Non-fetch surface forwards.
  up.publish_watermark(42);
  EXPECT_EQ(up.watermark_of(0), 42u);
  EXPECT_EQ(up.rank(), 1);
  EXPECT_EQ(up.world_size(), 2);
}

// ---------------------------------------------------------------------------
// Incremental rebalance after a leave

TEST(Rebalance, DropRankRemovesOnlyTheDeadRanksHoldings) {
  // rank 0 caches {1,2}; rank 1 caches {2,3,4}; rank 2 caches {5}.
  const auto plan_for = [](std::vector<std::pair<data::SampleId, int>> entries) {
    core::CachePlan plan;
    plan.per_class.resize(2);
    for (const auto& [sample, cls] : entries) {
      plan.per_class[static_cast<std::size_t>(cls)].samples.push_back(sample);
      plan.class_of[sample] = cls;
    }
    return plan;
  };
  const std::vector<core::CachePlan> plans = {
      plan_for({{1, 0}, {2, 0}}),
      plan_for({{2, 0}, {3, 0}, {4, 1}}),
      plan_for({{5, 0}}),
  };
  core::LocationIndex index(plans, /*self_rank=*/0);
  ASSERT_TRUE(index.cached_anywhere(3));
  ASSERT_TRUE(index.cached_anywhere(4));

  const runtime::RebalanceReport report =
      runtime::rebalance_after_leave(index, /*dead_rank=*/1);
  // Sample 2 survives on rank 0; samples 3 and 4 were rank 1-only.
  EXPECT_EQ(report.remapped_samples, 1u);
  EXPECT_EQ(report.pfs_only_samples, 2u);

  EXPECT_FALSE(index.cached_anywhere(3));
  EXPECT_FALSE(index.cached_anywhere(4));
  EXPECT_TRUE(index.cached_anywhere(2));
  EXPECT_TRUE(index.cached_anywhere(5));
  const auto holders = index.holders(2);
  ASSERT_EQ(holders.size(), 1u);
  EXPECT_EQ(holders[0].rank, 0);
  // A survivor's remote resolution is untouched by the rebalance.
  const auto remote = index.best_remote(5);
  ASSERT_TRUE(remote.has_value());
  EXPECT_EQ(remote->peer, 2);
}

// ---------------------------------------------------------------------------
// Delivered-sample completeness: faulted runs keep the fault-free digest

struct FaultedVsClean {
  runtime::RuntimeResult clean;
  runtime::RuntimeResult faulted;
};

FaultedVsClean run_scenario_pair(const std::string& name) {
  const scenario::Scenario& s = scenario::get(name);
  EXPECT_FALSE(s.worker.faults.empty()) << name << " scripts no faults";
  const data::Dataset dataset = scenario::worker_dataset(s);
  const runtime::RuntimeConfig faulted_config = scenario::runtime_config(s);
  runtime::RuntimeConfig clean_config = faulted_config;
  clean_config.faults = FaultPlan{};
  return {runtime::run_training(dataset, clean_config),
          runtime::run_training(dataset, faulted_config)};
}

TEST(FaultRuns, StragglerKeepsDeliveredDigest) {
  const auto [clean, faulted] = run_scenario_pair("fault-straggler");
  EXPECT_EQ(faulted.delivered_digest, clean.delivered_digest);
  EXPECT_EQ(faulted.verified_samples, clean.verified_samples);
  EXPECT_EQ(faulted.verification_failures, 0u);
}

TEST(FaultRuns, DroppedConnectionsMissToPfsWithSameDigest) {
  const auto [clean, faulted] = run_scenario_pair("fault-drop");
  EXPECT_EQ(faulted.delivered_digest, clean.delivered_digest);
  EXPECT_EQ(faulted.verified_samples, clean.verified_samples);
  EXPECT_EQ(faulted.verification_failures, 0u);
  // The drop spans the whole run, so rank 1 (the scripted rank) can never
  // complete a remote fetch — every attempt degrades to a detectable miss
  // plus a PFS fallback, never a lost sample.
}

TEST(FaultRuns, PfsBurstKeepsDeliveredDigest) {
  const auto [clean, faulted] = run_scenario_pair("fault-pfs-burst");
  EXPECT_EQ(faulted.delivered_digest, clean.delivered_digest);
  EXPECT_EQ(faulted.verified_samples, clean.verified_samples);
  EXPECT_EQ(faulted.verification_failures, 0u);
}

TEST(FaultRuns, ChurnGossipScenarioMatchesFixedWindowDigest) {
  // fault-churn-gossip is contention-batched-socket plus the adaptive
  // flush floor; adaptation changes delivery LATENCY only, so the threaded
  // digest and gamma envelope must match the fixed-window base scenario.
  const scenario::Scenario& adaptive = scenario::get("fault-churn-gossip");
  const scenario::Scenario& fixed = scenario::get("contention-batched-socket");
  ASSERT_GT(adaptive.worker.gossip.min_flush_virtual_s, 0.0);
  ASSERT_LE(adaptive.worker.gossip.min_flush_virtual_s,
            adaptive.worker.gossip.flush_virtual_s);
  const data::Dataset dataset = scenario::worker_dataset(adaptive);
  const runtime::RuntimeResult a =
      runtime::run_training(dataset, scenario::runtime_config(adaptive));
  const runtime::RuntimeResult f =
      runtime::run_training(dataset, scenario::runtime_config(fixed));
  EXPECT_EQ(a.delivered_digest, f.delivered_digest);
  EXPECT_EQ(a.verified_samples, f.verified_samples);
  EXPECT_EQ(a.pfs_peak_gamma, f.pfs_peak_gamma);
}

TEST(FaultRuns, RegistryEntriesValidateAndCarryPlans) {
  for (const char* name : {"fault-straggler", "fault-drop", "fault-pfs-burst",
                           "fault-churn-gossip", "elastic-sweep-join",
                           "elastic-sweep-leave"}) {
    SCOPED_TRACE(name);
    const scenario::Scenario& s = scenario::get(name);
    EXPECT_TRUE(scenario::validate(s).empty());
    // runtime_config carries the plan into the harness.
    const runtime::RuntimeConfig config = scenario::runtime_config(s);
    EXPECT_EQ(config.faults, s.worker.faults);
  }
  EXPECT_FALSE(scenario::get("elastic-sweep-join").worker.faults.membership.empty());
  EXPECT_FALSE(scenario::get("elastic-sweep-leave").worker.faults.membership.empty());
}

// ---------------------------------------------------------------------------
// Elastic sweep worlds

sim::SimResult cell_result(std::uint64_t i) {
  sim::SimResult r;
  r.policy = "cell-" + std::to_string(i);
  r.dataset = "elastic";
  r.total_s = 1.5 * static_cast<double>(i) + 0.25;
  r.compute_s = 2.0 + static_cast<double>(i);
  r.epoch_s = {0.5 + static_cast<double>(i)};
  return r;
}

std::uint64_t serial_digest(std::uint64_t n) {
  std::vector<sim::SimResult> results;
  for (std::uint64_t i = 0; i < n; ++i) results.push_back(cell_result(i));
  return sim::sweep_results_digest(results);
}

TEST(ElasticSweep, AbandonWithoutElasticIsRejected) {
  sim::SweepServiceOptions options;
  options.abandon_after_pulls = 1;
  EXPECT_THROW(
      (void)sim::run_sweep_service(nullptr, 4, cell_result, 0x31337u, options),
      std::invalid_argument);
}

TEST(ElasticSweep, LateJoinerPullsAndDigestMatchesSerial) {
  constexpr std::uint64_t kCells = 30;
  constexpr int kBaseWorld = 2;
  constexpr int kMaxWorld = 3;
  const std::uint64_t signature = 0xE1A571Cu;
  const std::uint16_t port = net::pick_free_port();

  // Phase 1: construct all three transports (the joiner, rank 2, meets the
  // still-open elastic rendezvous); phase 2: run the sweep, the joiner
  // starting late.  Keeping construction separate means the joiner can
  // never race the root's listener teardown.
  std::vector<std::unique_ptr<net::SocketTransport>> transports(kMaxWorld);
  {
    std::vector<std::thread> ctors;
    for (int r = 0; r < kMaxWorld; ++r) {
      ctors.emplace_back([&, r] {
        net::SocketOptions options;
        options.rank = r;
        options.world_size = kBaseWorld;
        options.max_world = kMaxWorld;
        options.rendezvous_port = port;
        options.timeout_s = 60.0;
        transports[static_cast<std::size_t>(r)] =
            std::make_unique<net::SocketTransport>(options);
      });
    }
    for (auto& t : ctors) t.join();
  }
  for (const auto& t : transports) ASSERT_NE(t, nullptr);
  // A joiner is outside the collective count by design.
  EXPECT_THROW((void)transports[2]->allgather({}), std::runtime_error);

  const auto evaluate = [](std::uint64_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return cell_result(i);
  };
  sim::SweepServiceOptions service;
  service.num_threads = 1;
  service.elastic = true;
  service.max_workers = kMaxWorld;

  std::vector<sim::SweepServiceReport> reports(kMaxWorld);
  std::vector<std::string> errors(kMaxWorld);
  std::vector<std::thread> ranks;
  for (int r = 0; r < kMaxWorld; ++r) {
    ranks.emplace_back([&, r] {
      try {
        if (r == kBaseWorld) {
          // The joiner shows up mid-sweep and just starts pulling.
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        reports[static_cast<std::size_t>(r)] = sim::run_sweep_service(
            transports[static_cast<std::size_t>(r)].get(), kCells, evaluate,
            signature, service);
      } catch (const std::exception& ex) {
        errors[static_cast<std::size_t>(r)] = ex.what();
      }
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < kMaxWorld; ++r) {
    EXPECT_EQ(errors[static_cast<std::size_t>(r)], "") << "rank " << r;
  }

  const sim::SweepServiceReport& root = reports[0];
  EXPECT_EQ(root.stats.completed_cells, kCells);
  ASSERT_EQ(root.results.size(), kCells);
  EXPECT_EQ(sim::sweep_results_digest(root.results), serial_digest(kCells));
  std::uint64_t executed = 0;
  for (const auto& report : reports) executed += report.stats.executed_cells;
  EXPECT_GE(executed, kCells);
}

TEST(ElasticSweep, WorkerDyingMidSweepKeepsDigestIdentity) {
  constexpr std::uint64_t kCells = 24;
  constexpr int kWorld = 2;
  const std::uint64_t signature = 0xDEAD01u;
  const std::uint16_t port = net::pick_free_port();

  const auto evaluate = [](std::uint64_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return cell_result(i);
  };

  std::vector<sim::SweepServiceReport> reports(kWorld);
  std::vector<std::string> errors(kWorld);
  std::vector<std::thread> ranks;
  for (int r = 0; r < kWorld; ++r) {
    ranks.emplace_back([&, r] {
      try {
        net::SocketOptions options;
        options.rank = r;
        options.world_size = kWorld;
        options.max_world = kWorld;
        options.rendezvous_port = port;
        options.timeout_s = 60.0;
        net::SocketTransport transport(options);
        sim::SweepServiceOptions service;
        service.num_threads = 1;
        service.elastic = true;
        service.max_workers = kWorld;
        if (r == 1) {
          // One reported pull, then take a grant and vanish: the cells the
          // dead worker held are recovered by rank 0's tail re-grants.
          service.abandon_after_pulls = 1;
        }
        reports[static_cast<std::size_t>(r)] = sim::run_sweep_service(
            &transport, kCells, evaluate, signature, service);
      } catch (const std::exception& ex) {
        errors[static_cast<std::size_t>(r)] = ex.what();
      }
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_EQ(errors[static_cast<std::size_t>(r)], "") << "rank " << r;
  }

  const sim::SweepServiceReport& root = reports[0];
  EXPECT_EQ(root.stats.completed_cells, kCells);
  ASSERT_EQ(root.results.size(), kCells);
  EXPECT_EQ(sim::sweep_results_digest(root.results), serial_digest(kCells));
}

TEST(ElasticSweep, GammaDrainsToZeroWhenARankDiesHoldingIt) {
  const std::uint16_t port = net::pick_free_port();
  std::unique_ptr<net::SocketTransport> root;
  std::unique_ptr<net::SocketTransport> peer;
  std::vector<std::thread> ctors;
  for (int r = 0; r < 2; ++r) {
    ctors.emplace_back([&, r] {
      net::SocketOptions options;
      options.rank = r;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 60.0;
      auto transport = std::make_unique<net::SocketTransport>(options);
      (r == 0 ? root : peer) = std::move(transport);
    });
  }
  for (auto& t : ctors) t.join();
  ASSERT_NE(root, nullptr);
  ASSERT_NE(peer, nullptr);

  // Rank 1 raises gamma by 2, then dies (transport destroyed) without ever
  // releasing — the scripted "rank N dies holding PFS readers" walkthrough.
  EXPECT_EQ(peer->pfs_adjust(+2), 2);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (root->pfs_adjust(0) != 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(root->pfs_adjust(0), 2);

  peer.reset();
  // The root's dead-rank release must drain the orphaned contribution.
  while (root->pfs_adjust(0) != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(root->pfs_adjust(0), 0);
}

}  // namespace
}  // namespace nopfs
