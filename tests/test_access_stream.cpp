// Property tests for clairvoyant access-stream generation (paper Sec. 2):
// each epoch is a permutation, every sample is accessed exactly once per
// epoch, worker streams partition the epoch, and everything is exactly
// reproducible from the seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <tuple>

#include "core/access_stream.hpp"

namespace nopfs::core {
namespace {

StreamConfig make_config(std::uint64_t f, int n, int e, std::uint64_t b,
                         bool drop_last = true, std::uint64_t seed = 42) {
  StreamConfig config;
  config.seed = seed;
  config.num_samples = f;
  config.num_workers = n;
  config.num_epochs = e;
  config.global_batch = b;
  config.drop_last = drop_last;
  return config;
}

TEST(StreamConfig, DerivedQuantities) {
  const StreamConfig config = make_config(1000, 4, 3, 32);
  EXPECT_EQ(config.iterations_per_epoch(), 31u);  // floor(1000/32)
  EXPECT_EQ(config.local_batch(), 8u);
  EXPECT_EQ(config.samples_per_worker_epoch(), 248u);  // 31*32/4
}

TEST(StreamConfig, KeepLastPartialBatch) {
  const StreamConfig config = make_config(1000, 4, 1, 32, /*drop_last=*/false);
  EXPECT_EQ(config.iterations_per_epoch(), 32u);  // ceil
}

TEST(StreamConfig, ValidationErrors) {
  EXPECT_THROW(make_config(0, 4, 1, 4).validate(), std::invalid_argument);
  EXPECT_THROW(make_config(100, 0, 1, 4).validate(), std::invalid_argument);
  EXPECT_THROW(make_config(100, 4, 0, 4).validate(), std::invalid_argument);
  EXPECT_THROW(make_config(100, 4, 1, 0).validate(), std::invalid_argument);
  EXPECT_THROW(make_config(100, 4, 1, 6).validate(), std::invalid_argument);  // 6 % 4
  EXPECT_THROW(make_config(4, 4, 1, 8).validate(), std::invalid_argument);  // B > F
  EXPECT_NO_THROW(make_config(100, 4, 1, 4).validate());
}

// ---------------------------------------------------------------------------
// Parameterized sweep over (F, N, B) shapes.

using Shape = std::tuple<std::uint64_t, int, std::uint64_t>;  // F, N, B

class StreamProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(StreamProperty, EpochOrderIsPermutation) {
  const auto [f, n, b] = GetParam();
  const AccessStreamGenerator gen(make_config(f, n, 2, b));
  for (int e = 0; e < 2; ++e) {
    auto order = gen.epoch_order(e);
    ASSERT_EQ(order.size(), f);
    std::sort(order.begin(), order.end());
    for (std::uint64_t i = 0; i < f; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST_P(StreamProperty, WorkersPartitionEachEpoch) {
  const auto [f, n, b] = GetParam();
  const AccessStreamGenerator gen(make_config(f, n, 1, b));
  const std::uint64_t consumed =
      gen.config().iterations_per_epoch() * gen.config().global_batch;
  std::set<data::SampleId> seen;
  std::uint64_t total = 0;
  for (int w = 0; w < n; ++w) {
    const auto stream = gen.worker_epoch_stream(w, 0);
    total += stream.size();
    for (const auto sample : stream) {
      EXPECT_TRUE(seen.insert(sample).second)
          << "sample " << sample << " consumed twice in one epoch";
    }
  }
  // Exactly the consumed prefix, no more, no less (exactly-once property).
  EXPECT_EQ(total, consumed);
}

TEST_P(StreamProperty, DeterministicReplay) {
  const auto [f, n, b] = GetParam();
  const AccessStreamGenerator a(make_config(f, n, 2, b, true, 7));
  const AccessStreamGenerator b_gen(make_config(f, n, 2, b, true, 7));
  for (int w = 0; w < n; ++w) {
    EXPECT_EQ(a.worker_stream(w), b_gen.worker_stream(w));
  }
}

TEST_P(StreamProperty, EpochsDiffer) {
  const auto [f, n, b] = GetParam();
  if (f < 16) GTEST_SKIP();
  const AccessStreamGenerator gen(make_config(f, n, 2, b));
  EXPECT_NE(gen.epoch_order(0), gen.epoch_order(1));
}

TEST_P(StreamProperty, ForEachAccessMatchesWorkerStream) {
  const auto [f, n, b] = GetParam();
  const AccessStreamGenerator gen(make_config(f, n, 2, b));
  for (int w = 0; w < std::min(n, 3); ++w) {
    std::vector<data::SampleId> visited;
    std::uint64_t expected_position = 0;
    gen.for_each_access(w, [&](const Access& access) {
      EXPECT_EQ(access.position, expected_position++);
      EXPECT_GE(access.epoch, 0);
      EXPECT_LT(access.epoch, 2);
      EXPECT_LT(access.iteration, gen.config().iterations_per_epoch());
      visited.push_back(access.sample);
    });
    EXPECT_EQ(visited, gen.worker_stream(w));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StreamProperty,
    ::testing::Values(Shape{100, 1, 10}, Shape{100, 4, 8}, Shape{1000, 4, 32},
                      Shape{1000, 8, 64}, Shape{999, 3, 9}, Shape{4096, 16, 256},
                      Shape{50, 5, 50}));

// ---------------------------------------------------------------------------

TEST(AccessStream, StridedPartitionMatchesDistributedSampler) {
  // Worker i must receive the shuffled positions congruent to i mod N, in
  // position order — PyTorch DistributedSampler semantics.
  const AccessStreamGenerator gen(make_config(64, 4, 1, 16));
  const auto order = gen.epoch_order(0);
  for (int w = 0; w < 4; ++w) {
    const auto stream = gen.worker_epoch_stream(w, 0);
    ASSERT_EQ(stream.size(), 16u);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(stream[i], order[i * 4 + w]);
    }
  }
}

TEST(AccessStream, OwnerOfPosition) {
  const AccessStreamGenerator gen(make_config(64, 4, 1, 16));
  EXPECT_EQ(gen.owner_of_position(0), 0);
  EXPECT_EQ(gen.owner_of_position(5), 1);
  EXPECT_EQ(gen.owner_of_position(7), 3);
}

TEST(AccessStream, DropLastSkipsTail) {
  // F=10, B=4: drop_last consumes 8 per epoch; keep-last consumes all 10.
  const AccessStreamGenerator drop(make_config(10, 2, 1, 4, true));
  const AccessStreamGenerator keep(make_config(10, 2, 1, 4, false));
  std::uint64_t dropped_total = 0;
  std::uint64_t kept_total = 0;
  for (int w = 0; w < 2; ++w) {
    dropped_total += drop.worker_epoch_stream(w, 0).size();
    kept_total += keep.worker_epoch_stream(w, 0).size();
  }
  EXPECT_EQ(dropped_total, 8u);
  EXPECT_EQ(kept_total, 10u);
}

TEST(AccessStream, SeedChangesStream) {
  const AccessStreamGenerator a(make_config(256, 4, 1, 16, true, 1));
  const AccessStreamGenerator b(make_config(256, 4, 1, 16, true, 2));
  EXPECT_NE(a.worker_stream(0), b.worker_stream(0));
}

TEST(AccessStream, FullStreamLength) {
  const AccessStreamGenerator gen(make_config(1000, 4, 5, 40));
  // 25 iterations * 10 local batch * 5 epochs.
  EXPECT_EQ(gen.worker_stream(0).size(), 1250u);
}

TEST(AccessStream, RankBoundsChecked) {
  const AccessStreamGenerator gen(make_config(100, 4, 1, 4));
  EXPECT_THROW((void)gen.worker_epoch_stream(4, 0), std::out_of_range);
  EXPECT_THROW((void)gen.worker_epoch_stream(-1, 0), std::out_of_range);
  EXPECT_THROW((void)gen.epoch_order(1), std::out_of_range);
}

}  // namespace
}  // namespace nopfs::core
