// The named scenario registry (ISSUE 4 acceptance):
//
//   * every registered name resolves and validate() accepts every entry —
//     this is the ctest half of the CI scenario gate (the workflow half runs
//     `nopfs_worker --scenario <each> --quick` over --list-scenarios);
//   * validate() rejects malformed entries (unknown policy, paper-scale
//     worker projection, inconsistent factories);
//   * the registry reproduces the EXACT SimResult the pre-refactor benches
//     produced: the historical config construction is inlined here verbatim
//     and compared bit-for-bit, plus golden FNV digests recorded from the
//     pre-refactor binaries pin the absolute values;
//   * the runtime projection of "worker-loopback" equals the historical
//     worker_config/nopfs_worker shape field by field, and runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/policies.hpp"
#include "sim_result_testutil.hpp"

namespace nopfs {
namespace {

sim::SimResult run_cell(const sim::SimConfig& config, const data::Dataset& dataset,
                        const std::string& policy_name) {
  const auto policy = sim::make_policy(policy_name);
  return sim::simulate(config, dataset, *policy);
}

TEST(ScenarioRegistry, EveryNameResolves) {
  const std::vector<std::string> all = scenario::names();
  ASSERT_FALSE(all.empty());
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_EQ(std::set<std::string>(all.begin(), all.end()).size(), all.size());
  for (const std::string& name : all) {
    const scenario::Scenario& s = scenario::get(name);
    EXPECT_EQ(s.name, name);
    EXPECT_FALSE(s.summary.empty()) << name;
  }
  // The entries the refactored benches/tests/worker resolve by name.
  for (const char* required :
       {"fig8-imagenet1k", "fig9-env-imagenet22k", "fig10-imagenet1k",
        "fig10-imagenet1k-lassen", "fig11-epoch0", "fig12-cache-stats",
        "fig13-batch-size", "fig14-imagenet22k", "fig15-cosmoflow",
        "fig16-end-to-end", "tab1-frameworks", "ablation-nopfs-design",
        "ablation-watermark", "runtime-validation", "worker-loopback",
        "contention-pfs", "contention-large-world", "contention-batched-socket",
        "micro-core", "micro-sweep"}) {
    EXPECT_NO_THROW((void)scenario::get(required)) << required;
  }
}

TEST(ScenarioRegistry, GossipAndLoaderListsReachTheRuntimeProjection) {
  // The batched-socket entry carries an explicit coarse gossip shape...
  const scenario::Scenario& batched = scenario::get("contention-batched-socket");
  const runtime::RuntimeConfig bc = scenario::runtime_config(batched, 2);
  EXPECT_DOUBLE_EQ(bc.pfs_gossip.flush_virtual_s, 0.05);
  EXPECT_EQ(bc.pfs_gossip.max_batch, 512);
  EXPECT_FALSE(bc.pfs_thread_weighted_gamma);

  // ...the large-world entry prices t(gamma) per reader thread (32 ranks,
  // each fanning out staging + class prefetcher threads)...
  const scenario::Scenario& large = scenario::get("contention-large-world");
  const runtime::RuntimeConfig lc =
      scenario::runtime_config(large, large.worker.world_size);
  EXPECT_TRUE(lc.pfs_thread_weighted_gamma);
  EXPECT_GE(large.worker.world_size, 32);
  EXPECT_EQ(lc.system.node.classes[0].capacity_mb, 0.0);
  EXPECT_GE(runtime::reader_threads_per_rank(lc), 2);

  // ...and the presentation lists carry the labels/kinds/multipliers the
  // benches used to hardcode.
  const scenario::Scenario& fig10 = scenario::get("fig10-imagenet1k");
  const auto lines = scenario::sim_loaders(fig10);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[1].label, "PyTorch+DALI");
  EXPECT_EQ(lines[1].policy, "staging");
  EXPECT_DOUBLE_EQ(lines[1].preprocess_mult, 8.0);
  const auto& validation_pairs = scenario::get("runtime-validation").worker.loaders;
  ASSERT_EQ(validation_pairs.size(), 4u);
  EXPECT_EQ(validation_pairs[0].kind, baselines::LoaderKind::kNaive);
  EXPECT_EQ(validation_pairs[0].policy, "naive");
  // Entries without an explicit list fall back to one line per policy.
  const auto fallback = scenario::sim_loaders(scenario::get("fig12-cache-stats"));
  ASSERT_EQ(fallback.size(), 1u);
  EXPECT_EQ(fallback[0].label, "nopfs");
  EXPECT_EQ(fallback[0].policy, "nopfs");
}

TEST(ScenarioRegistry, UnknownNameThrowsListingAllNames) {
  try {
    (void)scenario::get("no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos);
    EXPECT_NE(what.find("fig10-imagenet1k"), std::string::npos);
  }
}

TEST(ScenarioRegistry, ValidateAcceptsEveryEntry) {
  const std::vector<std::string> problems = scenario::validate();
  EXPECT_TRUE(problems.empty());
  for (const std::string& problem : problems) ADD_FAILURE() << problem;
}

TEST(ScenarioRegistry, ValidateRejectsMalformedEntries) {
  const auto problems_mentioning = [](const scenario::Scenario& s,
                                      const std::string& needle) {
    const std::vector<std::string> problems = scenario::validate(s);
    return std::any_of(problems.begin(), problems.end(), [&](const std::string& p) {
      return p.find(needle) != std::string::npos;
    });
  };

  scenario::Scenario base = scenario::get("worker-loopback");

  scenario::Scenario bad_policy = base;
  bad_policy.sim.policies = {"nopfs", "not-a-policy"};
  EXPECT_TRUE(problems_mentioning(bad_policy, "unknown policy"));

  scenario::Scenario bad_name = base;
  bad_name.name = "Not A Name";
  EXPECT_TRUE(problems_mentioning(bad_name, "kebab"));

  scenario::Scenario no_gpus = base;
  no_gpus.sim.gpu_counts.clear();
  EXPECT_TRUE(problems_mentioning(no_gpus, "GPU counts"));

  scenario::Scenario zero_batch = base;
  zero_batch.worker.per_worker_batch = 0;
  EXPECT_TRUE(problems_mentioning(zero_batch, "batch"));

  // A paper-scale system leaking into the CLI projection must be caught:
  // the worker view is what CI runs on every PR.
  scenario::Scenario paper_worker = base;
  paper_worker.worker.system = [](int n) { return tiers::presets::lassen(n); };
  EXPECT_TRUE(problems_mentioning(paper_worker, "loopback scale"));

  scenario::Scenario tiny_dataset = base;
  tiny_dataset.worker.dataset.num_samples = 1;
  EXPECT_TRUE(problems_mentioning(tiny_dataset, "global batch"));
}

// ---------------------------------------------------------------------------
// Bit-identical contract: the registry reproduces the pre-refactor benches.

/// The historical construction of the Fig. 10 left cell, copied verbatim
/// from bench_fig10_imagenet1k_scaling.cpp as of PR 3 (scaled() and
/// scale_capacities() were bench_common.hpp helpers with these exact bodies).
sim::SimConfig fig10_config_pre_refactor(int gpus, double scale) {
  sim::SimConfig config;
  config.system = tiers::presets::piz_daint(gpus);
  for (auto& sc : config.system.node.classes) sc.capacity_mb *= scale;
  config.system.node.staging.capacity_mb *= scale;
  config.system.node.preprocess_mbps *= 1.0;  // loader preprocess_mult
  config.seed = 0xC0FFEE;
  config.num_epochs = 3;
  config.per_worker_batch = 64;
  return config;
}

data::Dataset fig10_dataset_pre_refactor(double scale) {
  data::DatasetSpec spec = data::presets::imagenet1k();
  spec.num_samples = std::max<std::uint64_t>(
      1'000,
      static_cast<std::uint64_t>(static_cast<double>(spec.num_samples) * scale));
  return data::Dataset::synthetic(spec, 0xC0FFEE);
}

TEST(ScenarioGolden, Fig10ImageNet1kReproducesPreRefactorResults) {
  const scenario::Scenario& s = scenario::get("fig10-imagenet1k");
  const double scale = 1.0 / 8.0;  // the bench's --quick scale
  ASSERT_EQ(scenario::pick_scale(s, /*quick=*/true, /*full=*/false), scale);

  const data::Dataset old_dataset = fig10_dataset_pre_refactor(scale);
  const data::Dataset new_dataset = scenario::sim_dataset(s, scale, 0xC0FFEE);
  ASSERT_EQ(old_dataset.num_samples(), new_dataset.num_samples());
  ASSERT_EQ(old_dataset.sizes(), new_dataset.sizes());

  // Golden digests recorded from the pre-refactor binaries (same toolchain
  // and libm; refreshing them must be a deliberate act — it means simulate()
  // semantics changed).  The in-process old-vs-new comparison below is the
  // portable half of the contract.
  const struct {
    const char* policy;
    std::uint64_t digest;
  } cells[] = {
      {"staging", 0x33b34c858355f876ULL},
      {"nopfs", 0xaa927b28dec75241ULL},
      {"perfect", 0xe0d44b849233f03aULL},
  };
  for (const auto& cell : cells) {
    const sim::SimResult before =
        run_cell(fig10_config_pre_refactor(32, scale), old_dataset, cell.policy);
    const sim::SimResult after =
        run_cell(scenario::sim_config(s, 32, scale, 0xC0FFEE), new_dataset, cell.policy);
    expect_results_identical(before, after);
    EXPECT_EQ(sim::fnv_digest(after), cell.digest) << cell.policy;
  }
}

TEST(ScenarioGolden, Fig8AndTab1ReproducePreRefactorDigests) {
  {
    // fig8-imagenet1k at the bench default (1/16 scale, 5 epochs).
    const scenario::Scenario& s = scenario::get("fig8-imagenet1k");
    const double scale = scenario::pick_scale(s, false, false);
    ASSERT_EQ(scale, 1.0 / 16.0);
    const sim::SimConfig config = scenario::sim_config(s, 4, scale, 0xC0FFEE);
    ASSERT_EQ(config.num_epochs, 5);
    const data::Dataset dataset = scenario::sim_dataset(s, scale, 0xC0FFEE);
    const sim::SimResult result = run_cell(config, dataset, "nopfs");
    EXPECT_EQ(sim::fnv_digest(result), 0xb1882edf5f25e647ULL);
  }
  {
    // tab1: the registry's synthetic fixed-size dataset must equal the
    // explicit std::vector<float>(6000, 0.1f) the bench used to declare.
    const scenario::Scenario& s = scenario::get("tab1-frameworks");
    const data::Dataset dataset = scenario::sim_dataset(s, 1.0, 0xC0FFEE);
    const data::Dataset explicit_sizes("tab1", std::vector<float>(6'000, 0.1f));
    ASSERT_EQ(dataset.sizes(), explicit_sizes.sizes());
    const sim::SimConfig config = scenario::sim_config(s, 4, 1.0, 0xC0FFEE);
    const sim::SimResult result = run_cell(config, dataset, "nopfs");
    EXPECT_EQ(sim::fnv_digest(result), 0x1694468fb5246456ULL);
  }
}

// ---------------------------------------------------------------------------
// Runtime projection.

TEST(ScenarioRuntime, WorkerLoopbackMatchesHistoricalWorkerConfig) {
  const scenario::Scenario& s = scenario::get("worker-loopback");
  const runtime::RuntimeConfig config = scenario::runtime_config(s);
  // The shape examples/nopfs_worker and tests/test_distributed_runtime
  // hard-coded before the registry.
  EXPECT_EQ(config.system.num_workers, 2);
  EXPECT_EQ(config.system.node.staging.capacity_mb, 0.5);
  EXPECT_EQ(config.system.node.staging.prefetch_threads, 2);
  EXPECT_EQ(config.system.node.classes[0].capacity_mb, 16.0);
  EXPECT_EQ(config.system.node.classes[1].capacity_mb, 32.0);
  EXPECT_EQ(config.system.node.compute_mbps, 50.0);
  EXPECT_EQ(config.system.node.preprocess_mbps, 500.0);
  EXPECT_EQ(config.system.pfs.agg_read_mbps.at(1), 20.0);
  EXPECT_EQ(config.system.pfs.agg_read_mbps.at(4), 30.0);
  EXPECT_EQ(config.loader, baselines::LoaderKind::kNoPFS);
  EXPECT_EQ(config.seed, 2025u);
  EXPECT_EQ(config.num_epochs, 2);
  EXPECT_EQ(config.per_worker_batch, 4u);
  EXPECT_EQ(config.time_scale, 50.0);
  EXPECT_EQ(config.loader_threads, 2);
  EXPECT_EQ(config.lookahead, 8);

  const data::Dataset dataset = scenario::worker_dataset(s);
  EXPECT_EQ(dataset.num_samples(), 96u);
  EXPECT_EQ(dataset.name(), "worker");
}

TEST(ScenarioRuntime, WorkerProjectionRunsEndToEnd) {
  // One registry entry driven through the real threaded harness — the same
  // code path `nopfs_worker --scenario` takes in single-process mode.
  const scenario::Scenario& s = scenario::get("worker-loopback");
  runtime::RuntimeConfig config = scenario::runtime_config(s);
  config.verify_content = true;
  const data::Dataset dataset = scenario::worker_dataset(s);
  const runtime::RuntimeResult result = runtime::run_training(dataset, config);
  EXPECT_EQ(result.verification_failures, 0u);
  const std::uint64_t global = config.global_batch();
  EXPECT_EQ(result.verified_samples,
            static_cast<std::uint64_t>(config.num_epochs) *
                (dataset.num_samples() / global) * global);
}

}  // namespace
}  // namespace nopfs
