// Shape-regression tests: the paper's headline qualitative results, pinned
// as assertions at reduced scale (1/16 datasets + capacities, same regime
// boundaries).  If a model or policy change breaks one of these, the
// corresponding figure in EXPERIMENTS.md no longer reproduces.

#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "sim/engine.hpp"
#include "sim/policies.hpp"
#include "tiers/params.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace nopfs::sim {
namespace {

constexpr double kScale = 1.0 / 16.0;

data::Dataset scaled_dataset(const data::DatasetSpec& base, std::uint64_t seed = 7) {
  data::DatasetSpec spec = base;
  spec.num_samples = std::max<std::uint64_t>(
      2'000, static_cast<std::uint64_t>(spec.num_samples * kScale));
  return data::Dataset::synthetic(spec, seed);
}

void scale_node(tiers::SystemParams& system) {
  for (auto& sc : system.node.classes) sc.capacity_mb *= kScale;
  system.node.staging.capacity_mb *= kScale;
}

SimResult run(const tiers::SystemParams& system, const data::Dataset& dataset,
              const std::string& policy_name, int epochs = 3,
              std::uint64_t batch = 64) {
  SimConfig config;
  config.system = system;
  config.seed = 7;
  config.num_epochs = epochs;
  config.per_worker_batch = batch;
  auto policy = make_policy(policy_name);
  SimResult result = simulate(config, dataset, *policy);
  EXPECT_TRUE(result.supported) << policy_name;
  return result;
}

double epoch_median(const SimResult& result) {
  std::vector<double> rest(result.epoch_s.begin() + 1, result.epoch_s.end());
  return util::median(rest);
}

// Fig. 10 right: NoPFS's advantage over PyTorch grows with scale on Lassen
// (paper: ~1x at 64 GPUs up to 5.4x at 1024), and PyTorch stops scaling
// once the PFS saturates.
TEST(PaperShapes, Fig10LassenSpeedupGrowsWithScale) {
  const auto dataset = scaled_dataset(data::presets::imagenet1k());
  double previous_speedup = 0.0;
  double pytorch_256 = 0.0;
  double pytorch_1024 = 0.0;
  for (const int gpus : {64, 256, 1024}) {
    tiers::SystemParams system = tiers::presets::lassen(gpus);
    scale_node(system);
    const double pytorch = epoch_median(run(system, dataset, "staging", 3, 32));
    const double nopfs = epoch_median(run(system, dataset, "nopfs", 3, 32));
    const double speedup = pytorch / nopfs;
    EXPECT_GE(speedup, previous_speedup * 0.99) << gpus << " GPUs";
    previous_speedup = speedup;
    if (gpus == 256) pytorch_256 = pytorch;
    if (gpus == 1024) pytorch_1024 = pytorch;
  }
  EXPECT_GT(previous_speedup, 3.0);  // paper: 5.4x; ours ~4.9x at full scale
  // PyTorch gains little from 4x more GPUs past the PFS saturation point.
  EXPECT_GT(pytorch_1024, pytorch_256 * 0.5);
}

// Fig. 10 left: on Piz Daint the crossover sits around 128-256 GPUs
// (paper: 2.2x at 256).
TEST(PaperShapes, Fig10DaintCrossover) {
  const auto dataset = scaled_dataset(data::presets::imagenet1k());
  tiers::SystemParams at64 = tiers::presets::piz_daint(64);
  scale_node(at64);
  tiers::SystemParams at256 = tiers::presets::piz_daint(256);
  scale_node(at256);
  const double speedup64 = epoch_median(run(at64, dataset, "staging")) /
                           epoch_median(run(at64, dataset, "nopfs"));
  const double speedup256 = epoch_median(run(at256, dataset, "staging")) /
                            epoch_median(run(at256, dataset, "nopfs"));
  EXPECT_LT(speedup64, 1.1);   // compute-bound: no gap yet
  EXPECT_GT(speedup256, 1.5);  // paper: 2.2x
}

// Fig. 15: on CosmoFlow NoPFS stays within a few percent of the no-I/O
// bound at every scale (the paper's closest-to-lower-bound dataset).
TEST(PaperShapes, Fig15NoPFSNearNoIo) {
  const auto dataset = scaled_dataset(data::presets::cosmoflow());
  for (const int gpus : {64, 512, 1024}) {
    tiers::SystemParams system = tiers::presets::lassen(gpus);
    scale_node(system);
    system.node.compute_mbps = 1'375.0;
    system.node.preprocess_mbps = 4'000.0;
    const double nopfs = epoch_median(run(system, dataset, "nopfs", 3, 16));
    const double no_io = epoch_median(run(system, dataset, "perfect", 3, 16));
    EXPECT_LT(nopfs, no_io * 1.10) << gpus << " GPUs";
  }
}

// Fig. 12: the remote share of NoPFS's fetches grows with scale while the
// local share shrinks (remote memory beats the contended PFS).
TEST(PaperShapes, Fig12RemoteShareGrowsWithScale) {
  const auto dataset = scaled_dataset(data::presets::imagenet1k());
  tiers::SystemParams small = tiers::presets::piz_daint(32);
  scale_node(small);
  tiers::SystemParams large = tiers::presets::piz_daint(256);
  scale_node(large);
  const SimResult at32 = run(small, dataset, "nopfs");
  const SimResult at256 = run(large, dataset, "nopfs");
  EXPECT_GT(at256.count_share(Location::kRemote),
            at32.count_share(Location::kRemote) + 0.10);
  EXPECT_LT(at256.count_share(Location::kLocal), at32.count_share(Location::kLocal));
  // Deduplication: PFS bytes stay ~ dataset size at both scales.
  const double pfs32 = at32.location_mb[static_cast<int>(Location::kPfs)];
  const double pfs256 = at256.location_mb[static_cast<int>(Location::kPfs)];
  EXPECT_LT(pfs32, dataset.total_mb() * 1.2);
  EXPECT_LT(pfs256, dataset.total_mb() * 1.2);
}

// Fig. 9: more RAM or more SSD never hurts, and capacity in either tier
// can substitute for the other.
TEST(PaperShapes, Fig9MonotoneAndInterchangeable) {
  const auto dataset = scaled_dataset(data::presets::imagenet22k());
  const auto run_with = [&](double ram_gb, double ssd_gb) {
    tiers::SystemParams system = tiers::presets::sim_cluster(4);
    system.node.compute_mbps *= 5.0;
    system.node.preprocess_mbps *= 5.0;
    system.node.classes[0].capacity_mb = ram_gb * util::kGB * kScale;
    system.node.classes[1].capacity_mb = ssd_gb * util::kGB * kScale;
    return run(system, dataset, "nopfs", 3, 32).total_s;
  };
  const double small_small = run_with(32, 128);
  const double small_large = run_with(32, 1024);
  const double large_small = run_with(512, 128);
  const double large_large = run_with(512, 1024);
  EXPECT_LE(small_large, small_small * 1.01);  // more SSD never hurts
  EXPECT_LE(large_small, small_small * 1.01);  // more RAM never hurts
  EXPECT_LE(large_large, small_large * 1.01);
  // Interchangeability: maxing either tier lands within ~25% of the other.
  EXPECT_NEAR(small_large / large_small, 1.0, 0.25);
}

// Fig. 8 regime flags: LBANN refuses datasets beyond aggregate RAM, and
// sharding stops covering the dataset once it exceeds aggregate storage.
TEST(PaperShapes, Fig8RegimeFlags) {
  tiers::SystemParams system = tiers::presets::sim_cluster(4);
  scale_node(system);
  const auto dataset = scaled_dataset(data::presets::cosmoflow());  // ND < S
  SimConfig config;
  config.system = system;
  config.seed = 7;
  config.num_epochs = 2;
  config.per_worker_batch = 16;
  {
    auto policy = make_policy("lbann-dynamic");
    EXPECT_FALSE(simulate(config, dataset, *policy).supported);
  }
  {
    auto policy = make_policy("parallel-staging");
    const SimResult result = simulate(config, dataset, *policy);
    EXPECT_TRUE(result.supported);
    EXPECT_LT(result.accessed_fraction, 0.95);
    EXPECT_GT(result.prestage_s, 0.0);
  }
  {
    auto policy = make_policy("nopfs");
    const SimResult result = simulate(config, dataset, *policy);
    EXPECT_DOUBLE_EQ(result.accessed_fraction, 1.0);  // full randomization kept
  }
}

}  // namespace
}  // namespace nopfs::sim
