// Tests for emulated storage devices: tier rate limiting, PFS contention
// retuning (the t(gamma) behaviour of paper Sec. 4), NIC, cluster assembly.

#include <gtest/gtest.h>

#include <thread>

#include "tiers/devices.hpp"
#include "util/units.hpp"

namespace nopfs::tiers {
namespace {

StorageClassParams test_class(double capacity_mb, double agg_mbps, int threads) {
  StorageClassParams params;
  params.name = "ram";
  params.capacity_mb = capacity_mb;
  params.read_mbps = util::ThroughputCurve(
      {{0.0, 0.0}, {static_cast<double>(threads), agg_mbps}});
  params.write_mbps = params.read_mbps;
  params.prefetch_threads = threads;
  return params;
}

TEST(EmulatedTier, ChargesReadTime) {
  RealClock clock;
  // 100 MB/s scaled 10x -> 1000 MB/s effective.
  EmulatedTier tier(clock, test_class(1000.0, 100.0, 2), /*time_scale=*/10.0);
  const double t0 = clock.now();
  tier.read(20.0);  // ~20 ms real
  EXPECT_GE(clock.now() - t0, 0.015);
  EXPECT_NEAR(tier.total_read_mb(), 20.0, 1e-9);
  tier.write(5.0);
  EXPECT_NEAR(tier.total_written_mb(), 5.0, 1e-9);
}

TEST(EmulatedPfs, GammaTracksActiveWorkers) {
  RealClock clock;
  PfsParams params;
  params.agg_read_mbps = util::ThroughputCurve({{1, 100}, {2, 180}, {4, 300}});
  EmulatedPfs pfs(clock, params, /*time_scale=*/100.0);
  EXPECT_EQ(pfs.active_clients(), 0);

  std::vector<std::thread> readers;
  for (int w = 0; w < 3; ++w) {
    readers.emplace_back([&pfs, w] { pfs.read(w, 50.0); });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(pfs.active_clients(), 0);
  EXPECT_NEAR(pfs.total_read_mb(), 150.0, 1e-9);
}

TEST(EmulatedPfs, ContentionSlowsPerClientRate) {
  // Aggregate barely grows with clients: per-client throughput collapses.
  RealClock clock;
  PfsParams params;
  params.agg_read_mbps = util::ThroughputCurve({{1, 1000}, {4, 1200}});
  const double scale = 100.0;

  // One reader alone: 30 MB at 1000*100 MB/s -> ~0.3 ms real.
  {
    EmulatedPfs pfs(clock, params, scale);
    const double t0 = clock.now();
    pfs.read(0, 30.0);
    EXPECT_LT(clock.now() - t0, 0.05);
  }
  // Four concurrent readers share ~1200*100 MB/s for 120 MB total -> >= 1 ms,
  // and each one takes roughly the whole window (they finish together).
  {
    EmulatedPfs pfs(clock, params, scale);
    const double t0 = clock.now();
    std::vector<std::thread> readers;
    for (int w = 0; w < 4; ++w) {
      readers.emplace_back([&pfs, w] { pfs.read(w, 30.0); });
    }
    for (auto& r : readers) r.join();
    const double elapsed = clock.now() - t0;
    EXPECT_GE(elapsed, 120.0 / (1200.0 * scale) * 0.8);
  }
}

TEST(EmulatedPfs, NegativeWorkerRejected) {
  RealClock clock;
  PfsParams params;
  params.agg_read_mbps = util::ThroughputCurve({{1, 100}});
  EmulatedPfs pfs(clock, params, 1.0);
  EXPECT_THROW(pfs.read(-1, 1.0), std::invalid_argument);
}

TEST(EmulatedNic, ChargesTransfers) {
  RealClock clock;
  EmulatedNic nic(clock, /*bandwidth=*/100.0, /*time_scale=*/100.0);
  nic.transfer(10.0);
  EXPECT_NEAR(nic.total_transferred_mb(), 10.0, 1e-9);
}

TEST(EmulatedCluster, BuildsAllWorkerDevices) {
  RealClock clock;
  SystemParams sys = presets::sim_cluster(4);
  EmulatedCluster cluster(clock, sys, 1000.0);
  EXPECT_EQ(cluster.num_workers(), 4);
  for (int w = 0; w < 4; ++w) {
    auto& devices = cluster.worker(w);
    EXPECT_EQ(devices.tiers.size(), 2u);  // RAM + SSD
    EXPECT_NE(devices.staging, nullptr);
    EXPECT_NE(devices.nic, nullptr);
    EXPECT_EQ(devices.tiers[0]->name(), "ram");
    EXPECT_EQ(devices.tiers[1]->name(), "ssd");
  }
  EXPECT_EQ(cluster.params().name, "sim_cluster");
}

TEST(EmulatedCluster, RejectsZeroWorkers) {
  RealClock clock;
  SystemParams sys = presets::sim_cluster(0);
  EXPECT_THROW(EmulatedCluster(clock, sys, 1.0), std::invalid_argument);
}

TEST(Presets, PaperSimClusterParameters) {
  const SystemParams sys = presets::sim_cluster();
  EXPECT_EQ(sys.num_workers, 4);
  EXPECT_DOUBLE_EQ(sys.node.compute_mbps, 64.0);
  EXPECT_DOUBLE_EQ(sys.node.preprocess_mbps, 200.0);
  EXPECT_DOUBLE_EQ(sys.node.network_mbps, 24'000.0);
  EXPECT_DOUBLE_EQ(sys.node.staging.capacity_mb, 5.0 * util::kGB);
  ASSERT_EQ(sys.node.classes.size(), 2u);
  EXPECT_DOUBLE_EQ(sys.node.classes[0].capacity_mb, 120.0 * util::kGB);
  EXPECT_DOUBLE_EQ(sys.node.classes[1].capacity_mb, 900.0 * util::kGB);
  // Calibrated effective small-random-read PFS curve (see params.cpp):
  // saturating aggregate, per-client rate falling with contention.
  EXPECT_GT(sys.pfs.agg_read_mbps.at(8), sys.pfs.agg_read_mbps.at(1));
  EXPECT_LT(sys.pfs.per_client_mbps(8), sys.pfs.per_client_mbps(1));
  // D = sum of class capacities.
  EXPECT_DOUBLE_EQ(sys.node.total_cache_mb(), 1020.0 * util::kGB);
}

TEST(Presets, LassenAndDaintShapes) {
  const SystemParams lassen = presets::lassen(256);
  EXPECT_EQ(lassen.num_workers, 256);
  EXPECT_EQ(lassen.node.classes.size(), 2u);
  const SystemParams daint = presets::piz_daint(64);
  EXPECT_EQ(daint.node.classes.size(), 1u);  // no node-local SSD
  // PFS per-client throughput must fall as clients increase (contention).
  EXPECT_LT(lassen.pfs.per_client_mbps(1024), lassen.pfs.per_client_mbps(8));
  EXPECT_LT(daint.pfs.per_client_mbps(256), daint.pfs.per_client_mbps(8));
}

}  // namespace
}  // namespace nopfs::tiers
