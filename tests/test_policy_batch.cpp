// Batched-dispatch parity: for every policy, the engine's batched path
// (Policy::on_access_batch, one virtual call per local batch) must produce
// a SimResult bit-identical to the per-sample path (one Policy::on_access
// call per access) — the contract in DESIGN.md Sec. 6.3.

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/policies.hpp"
#include "sim_result_testutil.hpp"
#include "tiers/params.hpp"

namespace nopfs::sim {
namespace {

SimConfig small_config(int workers = 4, int epochs = 3) {
  SimConfig config;
  config.system = tiers::presets::sim_cluster(workers);
  config.num_epochs = epochs;
  config.per_worker_batch = 8;
  config.seed = 99;
  return config;
}

data::Dataset small_dataset(std::uint64_t f = 2048, float mb = 0.1f) {
  return data::Dataset("batch-test", std::vector<float>(f, mb));
}

TEST(PolicyBatch, BatchedMatchesPerSampleForEveryPolicy) {
  const data::Dataset dataset = small_dataset();
  for (const std::string& name : all_policy_names()) {
    SimConfig batched_config = small_config();
    SimConfig per_sample_config = batched_config;
    per_sample_config.force_per_sample_dispatch = true;

    auto batched_policy = make_policy(name);
    auto per_sample_policy = make_policy(name);
    const SimResult batched = simulate(batched_config, dataset, *batched_policy);
    const SimResult per_sample =
        simulate(per_sample_config, dataset, *per_sample_policy);

    SCOPED_TRACE("policy: " + name);
    expect_results_identical(batched, per_sample);
  }
}

TEST(PolicyBatch, ParityHoldsWithVariedSampleSizesAndWorkers) {
  // Varied sizes exercise capacity boundaries (first-touch caching fills up
  // mid-batch) where a subtly wrong batch override would diverge.
  std::vector<float> sizes;
  sizes.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    sizes.push_back(0.01f + 0.25f * static_cast<float>(i % 7));
  }
  const data::Dataset dataset("batch-test-varied", std::move(sizes));
  for (const std::string& name : all_policy_names()) {
    SimConfig batched_config = small_config(/*workers=*/8, /*epochs=*/4);
    SimConfig per_sample_config = batched_config;
    per_sample_config.force_per_sample_dispatch = true;

    auto batched_policy = make_policy(name);
    auto per_sample_policy = make_policy(name);
    const SimResult batched = simulate(batched_config, dataset, *batched_policy);
    const SimResult per_sample =
        simulate(per_sample_config, dataset, *per_sample_policy);

    SCOPED_TRACE("policy: " + name);
    expect_results_identical(batched, per_sample);
  }
}

TEST(PolicyBatch, DefaultBatchFallbackLoopsOnAccess) {
  // A policy that only implements on_access still works through the batch
  // interface: the base-class default must loop it in order.
  class CountingPolicy final : public Policy {
   public:
    [[nodiscard]] std::string name() const override { return "counting"; }
    double setup(const SimContext&) override { return 0.0; }
    [[nodiscard]] AccessDecision on_access(const SimContext&, int, int,
                                           data::SampleId sample, int) override {
      seen.push_back(sample);
      return {Location::kPfs, -1};
    }
    std::vector<data::SampleId> seen;
  };

  CountingPolicy policy;
  SimContext ctx;
  const data::SampleId samples[] = {5, 3, 9, 7};
  AccessDecision decisions[4];
  policy.on_access_batch(ctx, 0, 0, samples, 1, decisions);
  EXPECT_EQ(policy.seen, (std::vector<data::SampleId>{5, 3, 9, 7}));
  for (const AccessDecision& decision : decisions) {
    EXPECT_EQ(decision.location, Location::kPfs);
  }
}

TEST(PolicyBatch, OpportunisticReorderingIsNotBatchable) {
  // DeepIO opportunistic substitutes cached samples in remap(), and
  // on_access() grows the cache mid-batch — the engine must keep the
  // interleaved path for it.
  EXPECT_FALSE(make_policy("deepio-opportunistic")->batchable());
  for (const std::string& name : all_policy_names()) {
    if (name == "deepio-opportunistic") continue;
    EXPECT_TRUE(make_policy(name)->batchable()) << name;
  }
}

}  // namespace
}  // namespace nopfs::sim
