// Tests for the epoch-order cache and the in-place epoch-order API: cached
// and uncached permutations must be value-identical, the cache must
// actually share (same pointer on a hit), eviction must respect the byte
// budget, and concurrent access must be safe.

#include <gtest/gtest.h>

#include <thread>

#include "core/access_stream.hpp"
#include "core/epoch_order_cache.hpp"

namespace nopfs::core {
namespace {

StreamConfig small_stream(std::uint64_t seed = 7, std::uint64_t f = 4096) {
  StreamConfig config;
  config.seed = seed;
  config.num_samples = f;
  config.num_workers = 4;
  config.num_epochs = 3;
  config.global_batch = 64;
  return config;
}

// The global cache's budget comes from NOPFS_EPOCH_CACHE_MB; with it set to
// 0 (caching disabled) pointer-sharing assertions would fail spuriously even
// though values are still correct, so sharing checks are gated on this.
bool global_cache_enabled() {
  return EpochOrderCache::global().budget_bytes() > 0;
}

TEST(EpochOrderCache, CachedMatchesUncached) {
  EpochOrderCache::global().clear();
  const AccessStreamGenerator gen(small_stream());
  for (int e = 0; e < 3; ++e) {
    const auto uncached = gen.epoch_order(e);
    const auto cached = gen.epoch_order_shared(e);
    EXPECT_EQ(uncached, *cached) << "epoch " << e;
    // Second lookup must be value-identical too (and the same object when
    // the global cache is enabled).
    const auto again = gen.epoch_order_shared(e);
    if (global_cache_enabled()) {
      EXPECT_EQ(cached.get(), again.get()) << "epoch " << e << " not shared";
    }
    EXPECT_EQ(uncached, *again);
  }
}

TEST(EpochOrderCache, InPlaceMatchesAllocating) {
  const AccessStreamGenerator gen(small_stream(11));
  std::vector<data::SampleId> buffer;
  for (int e = 0; e < 3; ++e) {
    gen.epoch_order_into(e, buffer);  // reuses the allocation across epochs
    EXPECT_EQ(buffer, gen.epoch_order(e)) << "epoch " << e;
  }
}

TEST(EpochOrderCache, DistinctKeysDistinctOrders) {
  EpochOrderCache::global().clear();
  const AccessStreamGenerator gen_a(small_stream(1));
  const AccessStreamGenerator gen_b(small_stream(2));
  EXPECT_NE(*gen_a.epoch_order_shared(0), *gen_b.epoch_order_shared(0));
  EXPECT_NE(*gen_a.epoch_order_shared(0), *gen_a.epoch_order_shared(1));
  // Same (seed, epoch, F) from an unrelated generator instance hits.
  const AccessStreamGenerator gen_c(small_stream(1));
  if (global_cache_enabled()) {
    EXPECT_EQ(gen_a.epoch_order_shared(0).get(), gen_c.epoch_order_shared(0).get());
  } else {
    EXPECT_EQ(*gen_a.epoch_order_shared(0), *gen_c.epoch_order_shared(0));
  }
}

TEST(EpochOrderCache, HitMissAccounting) {
  EpochOrderCache cache;
  const AccessStreamGenerator gen(small_stream(23));
  const auto generate = [&](std::vector<data::SampleId>& out) {
    gen.epoch_order_into(0, out);
  };
  const EpochOrderCache::Key key{23, 0, 4096};
  EXPECT_EQ(cache.misses(), 0u);
  const auto first = cache.get(key, generate);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  const auto second = cache.get(key, generate);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(EpochOrderCache, EvictsLeastRecentlyUsedUnderBudget) {
  // Budget for ~2 permutations of 100 samples (800 bytes each).
  EpochOrderCache cache(2 * 100 * sizeof(data::SampleId));
  StreamConfig config = small_stream(5, 100);
  config.global_batch = 20;
  const AccessStreamGenerator gen(config);
  const auto generate_for = [&](int epoch) {
    return [&gen, epoch](std::vector<data::SampleId>& out) {
      gen.epoch_order_into(epoch, out);
    };
  };
  const auto e0 = cache.get({5, 0, 100}, generate_for(0));
  const auto e1 = cache.get({5, 1, 100}, generate_for(1));
  EXPECT_EQ(cache.entries(), 2u);
  const auto e2 = cache.get({5, 2, 100}, generate_for(2));  // evicts epoch 0
  EXPECT_EQ(cache.entries(), 2u);
  // The evicted shared_ptr stays valid for live holders.
  EXPECT_EQ(e0->size(), 100u);
  // Epoch 0 is regenerated on the next request, value-identical.
  const auto e0_again = cache.get({5, 0, 100}, generate_for(0));
  EXPECT_EQ(*e0, *e0_again);
  EXPECT_NE(e0.get(), e0_again.get());  // different object: it was evicted
}

TEST(EpochOrderCache, EntryLargerThanBudgetIsNotPinned) {
  // A permutation bigger than the whole budget must not stay resident: the
  // caller's shared_ptr keeps it valid, but the cache must honor its cap.
  EpochOrderCache cache(10 * sizeof(data::SampleId));  // budget < one entry
  StreamConfig config = small_stream(9, 100);
  config.global_batch = 20;
  const AccessStreamGenerator gen(config);
  const auto order = cache.get({9, 0, 100}, [&](std::vector<data::SampleId>& out) {
    gen.epoch_order_into(0, out);
  });
  EXPECT_EQ(order->size(), 100u);   // caller's handle is intact
  EXPECT_EQ(cache.entries(), 0u);   // but nothing stays pinned
}

TEST(EpochOrderCache, ZeroBudgetDisablesCachingButStaysCorrect) {
  EpochOrderCache cache(0);
  const AccessStreamGenerator gen(small_stream(31));
  const auto generate = [&](std::vector<data::SampleId>& out) {
    gen.epoch_order_into(0, out);
  };
  const auto a = cache.get({31, 0, 4096}, generate);
  const auto b = cache.get({31, 0, 4096}, generate);
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(EpochOrderCache, ConcurrentGetsAgree) {
  EpochOrderCache cache;
  const AccessStreamGenerator gen(small_stream(77));
  constexpr int kThreads = 8;
  std::vector<EpochOrderCache::OrderPtr> seen(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        seen[static_cast<std::size_t>(t)] =
            cache.get({77, t % 2, 4096}, [&, t](std::vector<data::SampleId>& out) {
              gen.epoch_order_into(t % 2, out);
            });
      });
    }
    for (auto& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(*seen[static_cast<std::size_t>(t)], gen.epoch_order(t % 2));
  }
}

}  // namespace
}  // namespace nopfs::core
