// Tests for least-squares fitting and the regression-backed throughput
// curves the performance model interpolates (paper Sec. 5.2.2).

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/linreg.hpp"

namespace nopfs::util {
namespace {

TEST(LinearFit, ExactLine) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {3.0, 5.0, 7.0, 9.0};  // y = 1 + 2x
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.at(10.0), 21.0, 1e-12);
}

TEST(LinearFit, NoisyDataReasonableR2) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + ((i % 2 == 0) ? 1.0 : -1.0));
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(linear_fit({}, {}).slope, 0.0);
  const LinearFit single = linear_fit(std::vector<double>{2.0}, std::vector<double>{7.0});
  EXPECT_DOUBLE_EQ(single.slope, 0.0);
  EXPECT_DOUBLE_EQ(single.intercept, 7.0);
  // All x equal: flat fit through the mean.
  const LinearFit flat =
      linear_fit(std::vector<double>{3.0, 3.0}, std::vector<double>{1.0, 5.0});
  EXPECT_DOUBLE_EQ(flat.slope, 0.0);
  EXPECT_DOUBLE_EQ(flat.intercept, 3.0);
}

TEST(ThroughputCurve, ExactAtMeasuredPoints) {
  // The paper's Lassen PFS measurements.
  const ThroughputCurve curve({{1, 330}, {2, 730}, {4, 1540}, {8, 2870}});
  EXPECT_DOUBLE_EQ(curve.at(1), 330.0);
  EXPECT_DOUBLE_EQ(curve.at(2), 730.0);
  EXPECT_DOUBLE_EQ(curve.at(4), 1540.0);
  EXPECT_DOUBLE_EQ(curve.at(8), 2870.0);
}

TEST(ThroughputCurve, PiecewiseLinearBetween) {
  const ThroughputCurve curve({{1, 330}, {2, 730}, {4, 1540}, {8, 2870}});
  EXPECT_NEAR(curve.at(3), (730.0 + 1540.0) / 2.0, 1e-9);
  EXPECT_NEAR(curve.at(6), (1540.0 + 2870.0) / 2.0, 1e-9);
}

TEST(ThroughputCurve, RegressionExtrapolationBeyondRange) {
  const ThroughputCurve curve({{1, 330}, {2, 730}, {4, 1540}, {8, 2870}});
  // Slope ~ 362 MB/s per client; extrapolation should continue the trend
  // and never return negative throughput.
  const double t16 = curve.at(16);
  EXPECT_GT(t16, 2870.0);
  EXPECT_LT(t16, 2870.0 * 3.0);
  EXPECT_GE(curve.at(0.0), 0.0);
}

TEST(ThroughputCurve, SinglePointIsFlat) {
  ThroughputCurve curve({{4, 100.0}});
  EXPECT_DOUBLE_EQ(curve.at(1), 100.0);
  EXPECT_DOUBLE_EQ(curve.at(100), 100.0);
}

TEST(ThroughputCurve, EmptyReturnsZero) {
  const ThroughputCurve curve;
  EXPECT_DOUBLE_EQ(curve.at(5), 0.0);
  EXPECT_TRUE(curve.empty());
}

TEST(ThroughputCurve, AddPointResorts) {
  ThroughputCurve curve({{1, 10.0}, {4, 40.0}});
  curve.add_point(2, 20.0);
  EXPECT_DOUBLE_EQ(curve.at(2), 20.0);
  EXPECT_NEAR(curve.at(3), 30.0, 1e-9);
  EXPECT_EQ(curve.size(), 3u);
}

TEST(ThroughputCurve, DuplicateXThrows) {
  EXPECT_THROW(ThroughputCurve({{1, 10.0}, {1, 20.0}}), std::invalid_argument);
  ThroughputCurve curve({{1, 10.0}});
  EXPECT_THROW(curve.add_point(1, 5.0), std::invalid_argument);
}

TEST(ThroughputCurve, MonotoneCurveStaysMonotoneInside) {
  const ThroughputCurve curve({{1, 100}, {2, 180}, {4, 300}, {8, 400}});
  double previous = 0.0;
  for (double x = 1.0; x <= 8.0; x += 0.25) {
    const double y = curve.at(x);
    EXPECT_GE(y, previous);
    previous = y;
  }
}

}  // namespace
}  // namespace nopfs::util
