// End-to-end tests of the Job API (paper Sec. 5.2.1): single- and
// multi-worker jobs deliver exactly the clairvoyant access stream, with
// verified content, across epochs, with working caches and remote serving.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "core/job.hpp"
#include "data/materialize.hpp"
#include "net/sim_transport.hpp"
#include "util/units.hpp"

namespace nopfs::core {
namespace {

tiers::SystemParams small_system(int workers, double ram_mb = 10.0) {
  tiers::SystemParams sys;
  sys.name = "test";
  sys.num_workers = workers;
  sys.node.network_mbps = 1000.0;
  sys.node.compute_mbps = 100.0;
  sys.node.preprocess_mbps = 0.0;  // free preprocessing in unit tests
  sys.node.staging.capacity_mb = 1.0;
  sys.node.staging.prefetch_threads = 2;
  sys.node.staging.read_mbps = util::ThroughputCurve({{0, 0}, {2, 4000}});
  sys.node.staging.write_mbps = sys.node.staging.read_mbps;
  tiers::StorageClassParams ram;
  ram.name = "ram";
  ram.capacity_mb = ram_mb;
  ram.prefetch_threads = 2;
  ram.read_mbps = util::ThroughputCurve({{0, 0}, {2, 4000}});
  ram.write_mbps = ram.read_mbps;
  sys.node.classes = {ram};
  sys.pfs.agg_read_mbps = util::ThroughputCurve({{1, 300}, {4, 1000}});
  return sys;
}

data::Dataset small_dataset(std::uint64_t f = 128) {
  data::DatasetSpec spec;
  spec.name = "tiny";
  spec.num_samples = f;
  spec.mean_size_mb = 0.004;  // ~4 KB
  spec.stddev_size_mb = 0.002;
  return data::Dataset::synthetic(spec, 33);
}

JobOptions options_with(int epochs, std::uint64_t global_batch) {
  JobOptions options;
  options.seed = 77;
  options.num_epochs = epochs;
  options.global_batch = global_batch;
  return options;
}

TEST(Job, SingleWorkerDeliversFullStreamInOrder) {
  const auto dataset = small_dataset();
  const auto system = small_system(1);
  SyntheticPfsSource source(dataset, nullptr);
  Job job(dataset, system, 0, options_with(2, 8), source);
  job.start();

  const AccessStreamGenerator gen(job.stream_config());
  const auto expected = gen.worker_stream(0);
  ASSERT_EQ(job.total_accesses(), expected.size());

  std::size_t delivered = 0;
  while (auto sample = job.next()) {
    ASSERT_LT(delivered, expected.size());
    EXPECT_EQ(sample->id(), expected[delivered]);
    EXPECT_TRUE(data::verify_sample_content(sample->id(), sample->data()))
        << "position " << delivered;
    ++delivered;
  }
  EXPECT_EQ(delivered, expected.size());
}

TEST(Job, SecondEpochServedFromCache) {
  const auto dataset = small_dataset(64);
  const auto system = small_system(1, /*ram_mb=*/10.0);  // fits everything
  SyntheticPfsSource source(dataset, nullptr);
  Job job(dataset, system, 0, options_with(3, 8), source);
  job.start();
  while (auto sample = job.next()) {
  }
  const JobStats stats = job.stats();
  // Distinct samples hit the PFS roughly once each (the class prefetcher
  // and the staging path can race on a handful).
  EXPECT_LE(stats.pfs_fetches, 64u + 16u);
  EXPECT_GT(stats.local_fetches, 0u);
  // Fetches = 192 staging accesses plus up to one class-prefetch per
  // distinct sample (those later turn into staging local hits).
  EXPECT_GE(stats.total_fetches(), job.total_accesses());
  EXPECT_LE(stats.total_fetches(), job.total_accesses() + 64u);
  EXPECT_EQ(stats.cached_samples, 64u);
}

TEST(Job, MultiWorkerExactPartitionAndContent) {
  constexpr int kN = 4;
  const auto dataset = small_dataset(256);
  const auto system = small_system(kN);
  SyntheticPfsSource source(dataset, nullptr);
  auto transports = net::make_sim_transports(kN);

  std::vector<std::vector<data::SampleId>> delivered(kN);
  std::vector<std::uint64_t> bad_content(kN, 0);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < kN; ++rank) {
    threads.emplace_back([&, rank] {
      Job job(dataset, system, rank, options_with(2, 32), source,
              transports[rank].get());
      job.start();
      while (auto sample = job.next()) {
        delivered[rank].push_back(sample->id());
        if (!data::verify_sample_content(sample->id(), sample->data())) {
          ++bad_content[rank];
        }
      }
      job.stop();
    });
  }
  for (auto& thread : threads) thread.join();

  StreamConfig config;
  config.seed = 77;
  config.num_samples = 256;
  config.num_workers = kN;
  config.num_epochs = 2;
  config.global_batch = 32;
  const AccessStreamGenerator gen(config);
  for (int rank = 0; rank < kN; ++rank) {
    EXPECT_EQ(delivered[rank], gen.worker_stream(rank)) << "rank " << rank;
    EXPECT_EQ(bad_content[rank], 0u) << "rank " << rank;
  }
}

TEST(Job, MultiWorkerUsesRemoteFetches) {
  constexpr int kN = 2;
  const auto dataset = small_dataset(128);
  // Tiny local capacity: a worker cannot plan all the samples it accesses,
  // so unplanned accesses must be fetched — and with the PFS modeled as far
  // slower than the network, the router picks the peer's cache (Lemma 1:
  // samples cold here are hot, and thus planned, on the other worker).
  auto system = small_system(kN, /*ram_mb=*/0.1);
  system.pfs.agg_read_mbps = util::ThroughputCurve({{1, 1}, {4, 2}});
  SyntheticPfsSource source(dataset, nullptr);
  auto transports = net::make_sim_transports(kN);

  std::vector<JobStats> stats(kN);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < kN; ++rank) {
    threads.emplace_back([&, rank] {
      JobOptions options = options_with(4, 16);
      // Ablation switch doubles as a determinism aid here: without the
      // watermark gate, remote readiness does not depend on thread timing.
      options.router.use_watermark_heuristic = false;
      Job job(dataset, system, rank, options, source, transports[rank].get());
      job.start();
      while (auto sample = job.next()) {
      }
      stats[rank] = job.stats();
      job.stop();
    });
  }
  for (auto& thread : threads) thread.join();

  std::uint64_t remote_total = 0;
  std::uint64_t pfs_total = 0;
  for (const auto& s : stats) {
    remote_total += s.remote_fetches;
    pfs_total += s.pfs_fetches;
  }
  EXPECT_GT(remote_total, 0u);
  // Remote fetches displace a large share of the 1024 accesses' PFS reads.
  EXPECT_LT(pfs_total, 512u);
}

TEST(Job, StopMidStreamIsClean) {
  const auto dataset = small_dataset();
  const auto system = small_system(1);
  SyntheticPfsSource source(dataset, nullptr);
  Job job(dataset, system, 0, options_with(2, 8), source);
  job.start();
  for (int i = 0; i < 5; ++i) {
    auto sample = job.next();
    ASSERT_TRUE(sample.has_value());
  }
  job.stop();
  EXPECT_FALSE(job.next().has_value());
}

TEST(Job, FilesystemSsdBackendEndToEnd) {
  const auto dataset = small_dataset(64);
  auto system = small_system(1, /*ram_mb=*/0.05);  // tiny RAM forces SSD use
  tiers::StorageClassParams ssd = system.node.classes[0];
  ssd.name = "ssd";
  ssd.capacity_mb = 10.0;
  system.node.classes.push_back(ssd);

  SyntheticPfsSource source(dataset, nullptr);
  JobOptions options = options_with(2, 8);
  options.ssd_dir = std::filesystem::temp_directory_path() / "nopfs_test_job_ssd";
  Job job(dataset, system, 0, options, source);
  job.start();
  std::uint64_t delivered = 0;
  while (auto sample = job.next()) {
    EXPECT_TRUE(data::verify_sample_content(sample->id(), sample->data()));
    ++delivered;
  }
  EXPECT_EQ(delivered, job.total_accesses());
  const JobStats stats = job.stats();
  EXPECT_GT(stats.local_fetches, 0u);  // SSD hits in epoch 1
  job.stop();
  std::filesystem::remove_all(options.ssd_dir);
}

TEST(Job, RealFilesOnDiskSource) {
  data::DatasetSpec spec;
  spec.name = "disk";
  spec.num_samples = 32;
  spec.mean_size_mb = 0.002;
  spec.num_classes = 4;
  const auto dataset = data::Dataset::synthetic(spec, 9);
  const data::MaterializedDataset files(
      dataset, std::filesystem::temp_directory_path() / "nopfs_test_job_disk");
  DirectoryPfsSource source(dataset, files, nullptr);
  Job job(dataset, small_system(1), 0, options_with(2, 8), source);
  job.start();
  std::uint64_t delivered = 0;
  while (auto sample = job.next()) {
    EXPECT_TRUE(data::verify_sample_content(sample->id(), sample->data()));
    ++delivered;
  }
  EXPECT_EQ(delivered, job.total_accesses());
}

TEST(Job, ConstructionErrors) {
  const auto dataset = small_dataset();
  const auto system = small_system(2);
  SyntheticPfsSource source(dataset, nullptr);
  // Rank out of range.
  EXPECT_THROW(Job(dataset, system, 5, options_with(1, 8), source),
               std::invalid_argument);
  // Multi-worker remote fetching without a transport.
  EXPECT_THROW(Job(dataset, system, 0, options_with(1, 8), source),
               std::invalid_argument);
  // Double start.
  const auto single = small_system(1);
  Job job(dataset, single, 0, options_with(1, 8), source);
  job.start();
  EXPECT_THROW(job.start(), std::logic_error);
}

TEST(Job, EpochOfPosition) {
  const auto dataset = small_dataset(64);
  const auto system = small_system(1);
  SyntheticPfsSource source(dataset, nullptr);
  Job job(dataset, system, 0, options_with(4, 8), source);
  job.start();
  const auto per_epoch = job.total_accesses() / 4;
  EXPECT_EQ(job.epoch_of(0), 0);
  EXPECT_EQ(job.epoch_of(per_epoch), 1);
  EXPECT_EQ(job.epoch_of(job.total_accesses() - 1), 3);
}

}  // namespace
}  // namespace nopfs::core
