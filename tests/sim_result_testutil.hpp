#pragma once
// Shared helpers for tests that assert the sweep/batch determinism contract:
// two SimResults must be BIT-identical (exact double equality on every
// field), not merely close — the parallel sweep, the batched dispatch path,
// and the epoch-order cache all promise byte-equal outputs.
// fnv_digest() collapses a whole SimResult into one order-sensitive hash so
// golden results can be pinned as a single constant (test_scenario.cpp).

#include <gtest/gtest.h>

#include <cstring>

#include "sim/sim_config.hpp"

namespace nopfs::sim {

inline void expect_results_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.supported, b.supported);
  EXPECT_EQ(a.unsupported_reason, b.unsupported_reason);
  EXPECT_EQ(a.total_s, b.total_s);
  EXPECT_EQ(a.prestage_s, b.prestage_s);
  EXPECT_EQ(a.stall_s, b.stall_s);
  EXPECT_EQ(a.compute_s, b.compute_s);
  EXPECT_EQ(a.epoch_s, b.epoch_s);
  EXPECT_EQ(a.batch_s_epoch0, b.batch_s_epoch0);
  EXPECT_EQ(a.batch_s_rest, b.batch_s_rest);
  for (int l = 0; l < static_cast<int>(Location::kCount); ++l) {
    EXPECT_EQ(a.location_s[l], b.location_s[l]) << "location_s[" << l << "]";
    EXPECT_EQ(a.location_count[l], b.location_count[l]) << "location_count[" << l << "]";
    EXPECT_EQ(a.location_mb[l], b.location_mb[l]) << "location_mb[" << l << "]";
  }
  EXPECT_EQ(a.accessed_fraction, b.accessed_fraction);
}

/// Order-sensitive FNV-1a over every SimResult field (doubles hashed by bit
/// pattern): equal digests <=> bit-identical results.
class SimResultFnv {
 public:
  void bytes(const void* data, std::size_t len) {
    const auto* b = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      hash_ ^= b[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

inline std::uint64_t fnv_digest(const SimResult& r) {
  SimResultFnv f;
  f.str(r.policy);
  f.str(r.dataset);
  f.u64(r.supported ? 1 : 0);
  f.str(r.unsupported_reason);
  f.f64(r.total_s);
  f.f64(r.prestage_s);
  f.f64(r.stall_s);
  f.f64(r.compute_s);
  f.u64(r.epoch_s.size());
  for (double v : r.epoch_s) f.f64(v);
  f.u64(r.batch_s_epoch0.size());
  for (double v : r.batch_s_epoch0) f.f64(v);
  f.u64(r.batch_s_rest.size());
  for (double v : r.batch_s_rest) f.f64(v);
  for (int l = 0; l < static_cast<int>(Location::kCount); ++l) {
    f.f64(r.location_s[l]);
    f.u64(r.location_count[l]);
    f.f64(r.location_mb[l]);
  }
  f.f64(r.accessed_fraction);
  return f.hash();
}

}  // namespace nopfs::sim
