#pragma once
// Shared helper for tests that assert the sweep/batch determinism contract:
// two SimResults must be BIT-identical (exact double equality on every
// field), not merely close — the parallel sweep, the batched dispatch path,
// and the epoch-order cache all promise byte-equal outputs.

#include <gtest/gtest.h>

#include "sim/sim_config.hpp"

namespace nopfs::sim {

inline void expect_results_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.supported, b.supported);
  EXPECT_EQ(a.unsupported_reason, b.unsupported_reason);
  EXPECT_EQ(a.total_s, b.total_s);
  EXPECT_EQ(a.prestage_s, b.prestage_s);
  EXPECT_EQ(a.stall_s, b.stall_s);
  EXPECT_EQ(a.compute_s, b.compute_s);
  EXPECT_EQ(a.epoch_s, b.epoch_s);
  EXPECT_EQ(a.batch_s_epoch0, b.batch_s_epoch0);
  EXPECT_EQ(a.batch_s_rest, b.batch_s_rest);
  for (int l = 0; l < static_cast<int>(Location::kCount); ++l) {
    EXPECT_EQ(a.location_s[l], b.location_s[l]) << "location_s[" << l << "]";
    EXPECT_EQ(a.location_count[l], b.location_count[l]) << "location_count[" << l << "]";
    EXPECT_EQ(a.location_mb[l], b.location_mb[l]) << "location_mb[" << l << "]";
  }
  EXPECT_EQ(a.accessed_fraction, b.accessed_fraction);
}

}  // namespace nopfs::sim
