// Tests for runtime fetch-source selection: local hits, watermark-gated
// remote fetches, false-positive fallback, and cache-on-miss smoothing
// (paper Secs. 5.1, 5.2.2).

#include <gtest/gtest.h>

#include "core/fetch_router.hpp"
#include "data/materialize.hpp"
#include "net/sim_transport.hpp"
#include "util/units.hpp"

namespace nopfs::core {
namespace {

struct RouterFixture {
  RouterFixture() : dataset("fix", std::vector<float>(64, 0.001f)), source(dataset, nullptr) {
    // System: 2 workers, one RAM class.
    system.num_workers = 2;
    system.node.network_mbps = 1000.0;
    system.node.compute_mbps = 50.0;
    system.node.preprocess_mbps = 500.0;
    system.node.staging.prefetch_threads = 2;
    system.node.staging.read_mbps = util::ThroughputCurve({{0, 0}, {2, 4000}});
    system.node.staging.write_mbps = system.node.staging.read_mbps;
    tiers::StorageClassParams ram;
    ram.name = "ram";
    ram.capacity_mb = 100.0;
    ram.prefetch_threads = 2;
    ram.read_mbps = util::ThroughputCurve({{0, 0}, {2, 4000}});
    ram.write_mbps = ram.read_mbps;
    system.node.classes = {ram};
  }

  /// Builds router for rank 0; `plans` must have 2 entries.
  std::unique_ptr<FetchRouter> make_router(std::vector<CachePlan> plans,
                                           RouterOptions options,
                                           net::Transport* transport) {
    model = std::make_unique<PerfModel>(system);
    self_plan = plans[0];
    locations = LocationIndex(plans, 0);
    readiness = RemoteReadiness(plans);
    metadata = std::make_unique<MetadataStore>(1);
    backends.clear();
    backends.push_back(std::make_unique<MemoryBackend>(100.0));
    return std::make_unique<FetchRouter>(0, *model, self_plan, locations, readiness,
                                         *metadata, backends, source, transport,
                                         nullptr, options);
  }

  static CachePlan plan_with(std::initializer_list<data::SampleId> samples) {
    CachePlan plan;
    plan.per_class.resize(1);
    for (const auto sample : samples) {
      plan.per_class[0].samples.push_back(sample);
      plan.class_of[sample] = 0;
    }
    return plan;
  }

  tiers::SystemParams system;
  data::Dataset dataset;
  SyntheticPfsSource source;
  std::unique_ptr<PerfModel> model;
  CachePlan self_plan;
  LocationIndex locations;
  RemoteReadiness readiness;
  std::unique_ptr<MetadataStore> metadata;
  std::vector<std::unique_ptr<StorageBackend>> backends;
};

TEST(RemoteReadiness, PositionAndHeuristic) {
  CachePlan peer;
  peer.per_class.resize(1);
  peer.per_class[0].samples = {10, 20, 30};
  peer.class_of = {{10, 0}, {20, 0}, {30, 0}};
  const RemoteReadiness readiness({CachePlan{}, peer});
  EXPECT_EQ(readiness.position(1, 0, 20), 1);
  EXPECT_EQ(readiness.position(1, 0, 99), -1);
  EXPECT_EQ(readiness.position(0, 0, 10), -1);
  // Heuristic: peer likely cached position 1 only once self progress > 1.
  EXPECT_FALSE(readiness.likely_cached(1, 0, 20, 0));
  EXPECT_FALSE(readiness.likely_cached(1, 0, 20, 1));
  EXPECT_TRUE(readiness.likely_cached(1, 0, 20, 2));
}

TEST(FetchRouter, PfsFallbackWhenNothingCached) {
  RouterFixture fix;
  auto router = fix.make_router({RouterFixture::plan_with({}), RouterFixture::plan_with({})},
                                RouterOptions{}, nullptr);
  const Bytes bytes = router->fetch(5, fix.dataset.size_mb(5));
  EXPECT_TRUE(data::verify_sample_content(5, bytes));
  EXPECT_EQ(router->stats().pfs_fetches.load(), 1u);
}

TEST(FetchRouter, LocalHitAfterCached) {
  RouterFixture fix;
  auto router = fix.make_router(
      {RouterFixture::plan_with({5}), RouterFixture::plan_with({})}, RouterOptions{},
      nullptr);
  // First fetch: PFS + cache-on-miss into the planned class.
  (void)router->fetch(5, fix.dataset.size_mb(5));
  EXPECT_EQ(router->stats().pfs_fetches.load(), 1u);
  EXPECT_TRUE(fix.metadata->contains(5));
  // Second fetch: local.
  const Bytes bytes = router->fetch(5, fix.dataset.size_mb(5));
  EXPECT_TRUE(data::verify_sample_content(5, bytes));
  EXPECT_EQ(router->stats().local_fetches.load(), 1u);
}

TEST(FetchRouter, CacheOnMissDisabled) {
  RouterFixture fix;
  RouterOptions options;
  options.cache_on_miss = false;
  auto router = fix.make_router(
      {RouterFixture::plan_with({5}), RouterFixture::plan_with({})}, options, nullptr);
  (void)router->fetch(5, fix.dataset.size_mb(5));
  EXPECT_FALSE(fix.metadata->contains(5));
}

TEST(FetchRouter, UnplannedSampleNotCached) {
  RouterFixture fix;
  auto router = fix.make_router(
      {RouterFixture::plan_with({1}), RouterFixture::plan_with({})}, RouterOptions{},
      nullptr);
  (void)router->fetch(9, fix.dataset.size_mb(9));
  EXPECT_FALSE(fix.metadata->contains(9));
}

TEST(FetchRouter, RemoteFetchThroughTransport) {
  RouterFixture fix;
  auto transports = net::make_sim_transports(2);
  // Peer 1 serves sample 7.
  Bytes payload(util::mb_to_bytes(fix.dataset.size_mb(7)));
  data::fill_sample_content(7, payload);
  transports[1]->set_serve_handler(
      [payload](std::uint64_t id) -> std::optional<net::Bytes> {
        if (id == 7) return payload;
        return std::nullopt;
      });

  auto router = fix.make_router(
      {RouterFixture::plan_with({}), RouterFixture::plan_with({7})}, RouterOptions{},
      transports[0].get());
  // Watermark heuristic: peer plan has sample 7 at position 0; our class-0
  // progress must exceed 0 for the remote to count as ready.
  router->note_class_progress(0);
  const Bytes bytes = router->fetch(7, fix.dataset.size_mb(7));
  EXPECT_TRUE(data::verify_sample_content(7, bytes));
  EXPECT_EQ(router->stats().remote_fetches.load(), 1u);
  EXPECT_EQ(router->stats().pfs_fetches.load(), 0u);
}

TEST(FetchRouter, WatermarkGatesRemote) {
  RouterFixture fix;
  auto transports = net::make_sim_transports(2);
  transports[1]->set_serve_handler(
      [](std::uint64_t) -> std::optional<net::Bytes> { return net::Bytes{1}; });
  auto router = fix.make_router(
      {RouterFixture::plan_with({}), RouterFixture::plan_with({7})}, RouterOptions{},
      transports[0].get());
  // No local progress yet -> heuristic says peer has not prefetched -> PFS.
  (void)router->fetch(7, fix.dataset.size_mb(7));
  EXPECT_EQ(router->stats().pfs_fetches.load(), 1u);
  EXPECT_EQ(router->stats().remote_fetches.load(), 0u);
}

TEST(FetchRouter, RemoteMissFallsBackToPfs) {
  RouterFixture fix;
  auto transports = net::make_sim_transports(2);
  // Peer claims nothing despite the plan (prefetcher hasn't fetched yet):
  // the heuristic's false positive.
  transports[1]->set_serve_handler(
      [](std::uint64_t) -> std::optional<net::Bytes> { return std::nullopt; });
  auto router = fix.make_router(
      {RouterFixture::plan_with({}), RouterFixture::plan_with({7})}, RouterOptions{},
      transports[0].get());
  router->note_class_progress(0);
  const Bytes bytes = router->fetch(7, fix.dataset.size_mb(7));
  EXPECT_TRUE(data::verify_sample_content(7, bytes));
  EXPECT_EQ(router->stats().remote_misses.load(), 1u);
  EXPECT_EQ(router->stats().pfs_fetches.load(), 1u);
}

TEST(FetchRouter, RemoteDisabledByOption) {
  RouterFixture fix;
  auto transports = net::make_sim_transports(2);
  transports[1]->set_serve_handler(
      [](std::uint64_t) -> std::optional<net::Bytes> { return net::Bytes{1}; });
  RouterOptions options;
  options.use_remote = false;
  auto router = fix.make_router(
      {RouterFixture::plan_with({}), RouterFixture::plan_with({7})}, options,
      transports[0].get());
  router->note_class_progress(0);
  (void)router->fetch(7, fix.dataset.size_mb(7));
  EXPECT_EQ(router->stats().remote_fetches.load(), 0u);
  EXPECT_EQ(router->stats().pfs_fetches.load(), 1u);
}

TEST(FetchRouter, LoadLocalServesOnlyCached) {
  RouterFixture fix;
  auto router = fix.make_router(
      {RouterFixture::plan_with({3}), RouterFixture::plan_with({})}, RouterOptions{},
      nullptr);
  EXPECT_FALSE(router->load_local(3).has_value());
  (void)router->fetch(3, fix.dataset.size_mb(3));  // caches it
  const auto bytes = router->load_local(3);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_TRUE(data::verify_sample_content(3, *bytes));
}

TEST(FetchRouter, ProgressCounters) {
  RouterFixture fix;
  auto router = fix.make_router(
      {RouterFixture::plan_with({}), RouterFixture::plan_with({})}, RouterOptions{},
      nullptr);
  EXPECT_EQ(router->class_progress(0), 0u);
  router->note_class_progress(0);
  router->note_class_progress(0);
  EXPECT_EQ(router->class_progress(0), 2u);
}

}  // namespace
}  // namespace nopfs::core
