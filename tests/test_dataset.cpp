// Tests for the dataset model and the paper's preset parameters (Sec. 6.1).

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "data/dataset.hpp"
#include "util/units.hpp"

namespace nopfs::data {
namespace {

TEST(Presets, PaperParameters) {
  const DatasetSpec im1k = presets::imagenet1k();
  EXPECT_EQ(im1k.num_samples, 1'281'167u);
  EXPECT_DOUBLE_EQ(im1k.mean_size_mb, 0.1077);
  EXPECT_DOUBLE_EQ(im1k.stddev_size_mb, 0.1);
  EXPECT_EQ(im1k.num_classes, 1000u);

  const DatasetSpec im22k = presets::imagenet22k();
  EXPECT_EQ(im22k.num_samples, 14'197'122u);
  EXPECT_EQ(im22k.num_classes, 21'841u);

  const DatasetSpec open = presets::openimages();
  EXPECT_EQ(open.num_samples, 1'743'042u);

  const DatasetSpec cosmo = presets::cosmoflow();
  EXPECT_EQ(cosmo.num_samples, 262'144u);
  EXPECT_DOUBLE_EQ(cosmo.stddev_size_mb, 0.0);

  const DatasetSpec cosmo512 = presets::cosmoflow512();
  EXPECT_EQ(cosmo512.num_samples, 10'000u);
  EXPECT_DOUBLE_EQ(cosmo512.mean_size_mb, 1000.0);

  const DatasetSpec mnist = presets::mnist();
  EXPECT_EQ(mnist.num_samples, 50'000u);
  EXPECT_NEAR(mnist.mean_size_mb * 1024.0, 0.76, 1e-9);
}

TEST(Presets, TotalSizesMatchPaper) {
  // The paper quotes ~135 GB for ImageNet-1k, ~4 TB for CosmoFlow,
  // ~10 TB for CosmoFlow 512^3, ~40 MB for MNIST.
  const auto spec = presets::imagenet1k();
  const double total_gb = spec.mean_size_mb * spec.num_samples / util::kGB;
  EXPECT_NEAR(total_gb, 135.0, 5.0);

  const auto cosmo = presets::cosmoflow();
  EXPECT_NEAR(cosmo.mean_size_mb * cosmo.num_samples / util::kTB, 4.25, 0.3);

  const auto cosmo512 = presets::cosmoflow512();
  EXPECT_NEAR(cosmo512.mean_size_mb * cosmo512.num_samples / util::kTB, 9.5, 0.5);

  const auto mnist = presets::mnist();
  EXPECT_NEAR(mnist.mean_size_mb * mnist.num_samples, 37.1, 1.0);  // ~40 MB
}

TEST(Presets, ByNameAndUnknown) {
  for (const auto& name : presets::all_names()) {
    EXPECT_EQ(presets::by_name(name).name, name);
  }
  EXPECT_THROW(presets::by_name("nope"), std::invalid_argument);
}

TEST(Dataset, SyntheticMatchesSpecStatistics) {
  DatasetSpec spec = presets::imagenet1k();
  spec.num_samples = 50'000;  // smaller draw, same distribution
  const Dataset ds = Dataset::synthetic(spec, 7);
  EXPECT_EQ(ds.num_samples(), 50'000u);
  EXPECT_NEAR(ds.mean_size_mb(), spec.mean_size_mb, 0.01);
  double var = 0.0;
  for (SampleId k = 0; k < ds.num_samples(); ++k) {
    const double d = ds.size_mb(k) - ds.mean_size_mb();
    var += d * d;
  }
  var /= static_cast<double>(ds.num_samples());
  // Truncation at the 1 KB floor clips the lower tail slightly.
  EXPECT_NEAR(std::sqrt(var), spec.stddev_size_mb, 0.02);
}

TEST(Dataset, FixedSizeWhenSigmaZero) {
  const Dataset ds = Dataset::synthetic(presets::cosmoflow(), 1);
  for (SampleId k = 0; k < 100; ++k) {
    EXPECT_FLOAT_EQ(static_cast<float>(ds.size_mb(k)), 17.0f);
  }
}

TEST(Dataset, DeterministicForSeed) {
  DatasetSpec spec = presets::openimages();
  spec.num_samples = 1'000;
  const Dataset a = Dataset::synthetic(spec, 99);
  const Dataset b = Dataset::synthetic(spec, 99);
  EXPECT_EQ(a.sizes(), b.sizes());
  const Dataset c = Dataset::synthetic(spec, 100);
  EXPECT_NE(a.sizes(), c.sizes());
}

TEST(Dataset, SizesNeverBelowFloor) {
  DatasetSpec spec;
  spec.name = "tiny";
  spec.num_samples = 10'000;
  spec.mean_size_mb = 0.002;   // 2 KB mean with large sigma -> heavy clipping
  spec.stddev_size_mb = 0.01;
  const Dataset ds = Dataset::synthetic(spec, 3);
  for (SampleId k = 0; k < ds.num_samples(); ++k) {
    EXPECT_GE(ds.size_mb(k), spec.min_size_mb);
  }
}

TEST(Dataset, TotalIsSumOfSizes) {
  const Dataset ds("x", {1.0f, 2.0f, 3.5f});
  EXPECT_DOUBLE_EQ(ds.total_mb(), 6.5);
  EXPECT_DOUBLE_EQ(ds.mean_size_mb(), 6.5 / 3.0);
}

TEST(Dataset, ClassAssignmentPartition) {
  const Dataset ds("x", std::vector<float>(100, 1.0f), 10);
  std::vector<int> counts(10, 0);
  for (SampleId k = 0; k < 100; ++k) {
    const auto c = ds.class_of(k);
    ASSERT_LT(c, 10u);
    ++counts[c];
  }
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Dataset, InvalidArguments) {
  EXPECT_THROW(Dataset("x", {}), std::invalid_argument);
  DatasetSpec bad;
  bad.num_samples = 0;
  bad.mean_size_mb = 1.0;
  EXPECT_THROW(Dataset::synthetic(bad, 1), std::invalid_argument);
  bad.num_samples = 10;
  bad.mean_size_mb = 0.0;
  EXPECT_THROW(Dataset::synthetic(bad, 1), std::invalid_argument);
}

}  // namespace
}  // namespace nopfs::data
