// Tests for unit conversion/formatting and the bench table renderer.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/table.hpp"
#include "util/units.hpp"

namespace nopfs::util {
namespace {

TEST(Units, ByteConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(bytes_to_mb(1024 * 1024), 1.0);
  EXPECT_EQ(mb_to_bytes(1.0), 1024u * 1024u);
  EXPECT_EQ(mb_to_bytes(bytes_to_mb(123456789)), 123456789u);
}

TEST(Units, Constants) {
  EXPECT_DOUBLE_EQ(kGB, 1024.0);
  EXPECT_DOUBLE_EQ(kTB, 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(kKB * 1024.0, 1.0);
}

TEST(Units, FormatSize) {
  EXPECT_EQ(format_size_mb(0.76 * kKB), "0.76 KB");
  EXPECT_EQ(format_size_mb(135.0), "135 MB");
  EXPECT_EQ(format_size_mb(1.5 * kGB), "1.50 GB");
  EXPECT_EQ(format_size_mb(4.0 * kTB), "4.00 TB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.5), "500 ms");
  EXPECT_EQ(format_seconds(12.3), "12.3 s");
  EXPECT_EQ(format_seconds(240.0), "4.00 min");
  EXPECT_EQ(format_seconds(4572.0), "1.27 hrs");
}

TEST(Table, AlignedRendering) {
  Table t({"policy", "time"});
  t.add_row({"NoPFS", "0.79"});
  t.add_row({"Naive", "1.27"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("policy"), std::string::npos);
  EXPECT_NE(out.find("NoPFS"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"x,y", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",2\n");
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
}

TEST(BenchArgs, ParsesKnownFlags) {
  const char* argv[] = {"bench", "--csv", "--scenario", "imagenet1k",
                        "--seed", "123", "--quick"};
  const BenchArgs args = parse_bench_args(7, const_cast<char**>(argv));
  EXPECT_TRUE(args.csv);
  EXPECT_TRUE(args.quick);
  EXPECT_EQ(args.scenario, "imagenet1k");
  EXPECT_EQ(args.seed, 123u);
}

TEST(BenchArgs, IgnoresUnknownFlags) {
  const char* argv[] = {"bench", "--benchmark_filter=abc"};
  const BenchArgs args = parse_bench_args(2, const_cast<char**>(argv));
  EXPECT_FALSE(args.csv);
  EXPECT_TRUE(args.scenario.empty());
}

}  // namespace
}  // namespace nopfs::util
