// Tests for summary statistics, Welford accumulation, histograms and the
// binomial tail used by the access-frequency analysis (paper Sec. 3.1).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nopfs::util {
namespace {

TEST(Mean, BasicAndEmpty) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Variance, MatchesHandComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample variance with Bessel correction: 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Ci95, ShrinksWithSampleSize) {
  std::vector<double> small = {1.0, 2.0, 3.0};
  std::vector<double> large;
  for (int i = 0; i < 300; ++i) large.push_back(1.0 + (i % 3));
  EXPECT_GT(ci95_halfwidth(small), ci95_halfwidth(large));
  EXPECT_DOUBLE_EQ(ci95_halfwidth(std::vector<double>{1.0}), 0.0);
}

TEST(Summary, AllFieldsConsistent) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_GT(s.p99, s.p95);
}

TEST(Welford, MatchesBatchStatistics) {
  Rng rng(9);
  std::vector<double> xs;
  Welford w;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    xs.push_back(x);
    w.add(x);
  }
  EXPECT_NEAR(w.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(w.variance(), variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(w.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(w.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(Welford, MergeEqualsSinglePass) {
  Rng rng(10);
  Welford all;
  Welford a;
  Welford b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Welford, MergeWithEmpty) {
  Welford a;
  a.add(1.0);
  Welford empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  Welford b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(5);
  h.add(0);
  h.add(1);
  h.add(1);
  h.add(4);
  h.add(99);   // clamps into last bin
  h.add(-3);   // clamps into first bin
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(4), 2u);
  EXPECT_EQ(h.count_greater(1), 2u);
}

TEST(Histogram, AsciiRendersEveryBin) {
  Histogram h(3);
  h.add(0);
  h.add(1);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
}

TEST(BinomialPmf, MatchesClosedForm) {
  // Binomial(4, 0.5): pmf = {1,4,6,4,1}/16.
  EXPECT_NEAR(binomial_pmf(4, 0.5, 0), 1.0 / 16.0, 1e-12);
  EXPECT_NEAR(binomial_pmf(4, 0.5, 2), 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(binomial_pmf(4, 0.5, 4), 1.0 / 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 0.5, 5), 0.0);
}

TEST(BinomialPmf, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 1.0, 10), 1.0);
}

TEST(BinomialTail, SumsToOneMinusCdf) {
  const double p = 0.3;
  const std::uint64_t n = 20;
  double cdf = 0.0;
  for (std::uint64_t k = 0; k <= 7; ++k) cdf += binomial_pmf(n, p, k);
  EXPECT_NEAR(binomial_tail_greater(n, p, 7), 1.0 - cdf, 1e-9);
}

TEST(BinomialTail, MonteCarloAgreement) {
  // X ~ Binomial(90, 1/16) as in the paper's ImageNet example.
  const std::uint64_t n = 90;
  const double p = 1.0 / 16.0;
  Rng rng(4242);
  constexpr int kTrials = 200'000;
  int above = 0;
  for (int t = 0; t < kTrials; ++t) {
    int x = 0;
    for (std::uint64_t e = 0; e < n; ++e) x += rng.bernoulli(p) ? 1 : 0;
    if (x > 10) ++above;
  }
  const double analytic = binomial_tail_greater(n, p, 10);
  EXPECT_NEAR(static_cast<double>(above) / kTrials, analytic, 0.002);
}

TEST(BinomialTail, PmfSumsToOne) {
  for (std::uint64_t n : {1ull, 5ull, 50ull, 500ull}) {
    double total = 0.0;
    for (std::uint64_t k = 0; k <= n; ++k) total += binomial_pmf(n, 0.37, k);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace nopfs::util
