// Critical-path attribution & what-if engine (src/critpath/, DESIGN.md
// Sec. 9): hand-built DAGs with known critical paths, the recorder's
// observation-only contract (recording on vs. off is bit-identical), the
// longest-path-equals-engine-total property, per-resource attribution on
// the micro-critpath scenario, and what-if monotonicity (a speedup never
// lengthens the critical path).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "critpath/cp_attribution.hpp"
#include "critpath/cp_dep_graph.hpp"
#include "critpath/cp_registry.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/policies.hpp"
#include "sim_result_testutil.hpp"

namespace nopfs {
namespace {

using critpath::Attribution;
using critpath::DepGraph;
using critpath::DepGraphBuilder;
using critpath::NodeKind;
using critpath::Resource;

// ---------------------------------------------------------------------------
// Hand-built tiny DAGs.

TEST(CritpathGraph, SerialChainAttributesEveryEdge) {
  DepGraph g;
  const auto origin = g.add_node(NodeKind::kOrigin);
  const auto a = g.add_node(NodeKind::kRead);
  const auto b = g.add_node(NodeKind::kConsume);
  const auto c = g.add_node(NodeKind::kBarrier);
  g.add_edge(origin, a, 2.0, Resource::kPfs);
  g.add_edge(a, b, 3.0, Resource::kCompute);
  g.add_edge(b, c, 0.5, Resource::kAllreduce);
  g.set_sink(c);

  EXPECT_DOUBLE_EQ(g.end_to_end_s(), 5.5);
  const Attribution attr = critpath::attribute(g);
  EXPECT_DOUBLE_EQ(attr.end_to_end_s, 5.5);
  EXPECT_EQ(attr.path_edges, 3u);
  EXPECT_DOUBLE_EQ(attr.resource_s(Resource::kPfs), 2.0);
  EXPECT_DOUBLE_EQ(attr.resource_s(Resource::kCompute), 3.0);
  EXPECT_DOUBLE_EQ(attr.resource_s(Resource::kAllreduce), 0.5);
  EXPECT_DOUBLE_EQ(attr.path_sum_s(), attr.end_to_end_s);
  EXPECT_EQ(attr.binding(), Resource::kCompute);
}

TEST(CritpathGraph, DiamondPicksTheLongerArm) {
  // origin -> (pfs 4s) -> join  vs  origin -> (compute 1s) -> (compute 1s)
  // -> join: the 4s PFS arm is critical.
  DepGraph g;
  const auto origin = g.add_node(NodeKind::kOrigin);
  const auto slow = g.add_node(NodeKind::kRead);
  const auto fast1 = g.add_node(NodeKind::kConsume);
  const auto fast2 = g.add_node(NodeKind::kConsume);
  const auto join = g.add_node(NodeKind::kBarrier);
  g.add_edge(origin, slow, 4.0, Resource::kPfs);
  g.add_edge(origin, fast1, 1.0, Resource::kCompute);
  g.add_edge(fast1, fast2, 1.0, Resource::kCompute);
  g.add_edge(slow, join, 0.0, Resource::kJoin);
  g.add_edge(fast2, join, 0.0, Resource::kJoin);
  g.set_sink(join);

  EXPECT_DOUBLE_EQ(g.end_to_end_s(), 4.0);
  const Attribution attr = critpath::attribute(g);
  EXPECT_DOUBLE_EQ(attr.resource_s(Resource::kPfs), 4.0);
  EXPECT_DOUBLE_EQ(attr.resource_s(Resource::kCompute), 0.0);

  // A what-if that makes the PFS arm cheap flips the critical path to the
  // compute arm — re-walking the same graph, no rebuild.
  const auto model = critpath::make_scale_model("pfs=10x");
  const Attribution whatif = critpath::attribute(g, model.get());
  EXPECT_DOUBLE_EQ(whatif.end_to_end_s, 2.0);
  EXPECT_DOUBLE_EQ(whatif.resource_s(Resource::kCompute), 2.0);
  EXPECT_DOUBLE_EQ(whatif.resource_s(Resource::kPfs), 0.0);
}

TEST(CritpathGraph, ResourceTaggedForkJoinSplitsTiers) {
  // Two read arms on different storage tiers joining a consume node; the
  // remote tier-1 arm is slower and must own the attribution (with its
  // tier recorded).
  DepGraph g;
  const auto origin = g.add_node(NodeKind::kOrigin);
  const auto local_read = g.add_node(NodeKind::kRead);
  const auto remote_read = g.add_node(NodeKind::kRead);
  const auto consume = g.add_node(NodeKind::kConsume);
  g.add_edge(origin, local_read, 1.0, Resource::kLocal, /*tier=*/0);
  g.add_edge(origin, remote_read, 2.5, Resource::kRemote, /*tier=*/1);
  g.add_edge(local_read, consume, 0.0, Resource::kJoin);
  g.add_edge(remote_read, consume, 0.0, Resource::kJoin);
  g.set_sink(consume);

  const Attribution attr = critpath::attribute(g);
  EXPECT_DOUBLE_EQ(attr.end_to_end_s, 2.5);
  EXPECT_DOUBLE_EQ(attr.resource_s(Resource::kRemote), 2.5);
  EXPECT_DOUBLE_EQ(attr.resource_s(Resource::kLocal), 0.0);
  ASSERT_EQ(attr.remote_tier_s.size(), 1u);
  EXPECT_DOUBLE_EQ(attr.remote_tier_s.at(1), 2.5);
  EXPECT_TRUE(attr.local_tier_s.empty());
}

TEST(CritpathGraph, RejectsBackwardEdges) {
  DepGraph g;
  const auto a = g.add_node(NodeKind::kOrigin);
  const auto b = g.add_node(NodeKind::kConsume);
  EXPECT_THROW(g.add_edge(b, a, 1.0, Resource::kCompute), std::logic_error);
  EXPECT_THROW(g.add_edge(a, a, 1.0, Resource::kCompute), std::logic_error);
  EXPECT_THROW(g.add_edge(a, b, -1.0, Resource::kCompute), std::logic_error);
}

// ---------------------------------------------------------------------------
// Cost-model registry.

TEST(CritpathRegistry, SeedsStandardModelsAndParsesInlineSpecs) {
  auto& reg = critpath::Registry::instance();
  EXPECT_TRUE(reg.contains("recorded"));
  EXPECT_TRUE(reg.contains("pfs=2x"));
  EXPECT_GE(critpath::Registry::default_whatif().size(), 3u);
  for (const std::string& name : critpath::Registry::default_whatif()) {
    EXPECT_NE(reg.make(name), nullptr);
  }

  // Inline specs (not registered) parse: combined knobs, bare factors, nic.
  const auto combined = reg.make("pfs=2x,nic=0.5x,compute=3");
  critpath::Edge pfs_edge{0, 1, 4.0, Resource::kPfs, -1};
  critpath::Edge remote_edge{0, 1, 4.0, Resource::kRemote, 0};
  critpath::Edge allreduce_edge{0, 1, 4.0, Resource::kAllreduce, -1};
  critpath::Edge compute_edge{0, 1, 3.0, Resource::kCompute, -1};
  critpath::Edge staging_edge{0, 1, 5.0, Resource::kStaging, -1};
  EXPECT_DOUBLE_EQ(combined->cost(pfs_edge), 2.0);
  EXPECT_DOUBLE_EQ(combined->cost(remote_edge), 8.0);     // nic=0.5x slows it
  EXPECT_DOUBLE_EQ(combined->cost(allreduce_edge), 8.0);  // nic covers allreduce
  EXPECT_DOUBLE_EQ(combined->cost(compute_edge), 1.0);
  EXPECT_DOUBLE_EQ(combined->cost(staging_edge), 5.0);    // untouched knob

  EXPECT_THROW((void)reg.make("warp=2x"), std::invalid_argument);
  EXPECT_THROW((void)reg.make("pfs=0x"), std::invalid_argument);
  EXPECT_THROW((void)reg.make("pfs"), std::invalid_argument);
  EXPECT_THROW((void)reg.make(""), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Recorder contract on real scenarios.

sim::SimResult run_scenario_sim(const scenario::Scenario& scn, double scale,
                                sim::RunRecorder* recorder) {
  sim::SimConfig config = scenario::sim_config(scn, scn.sim.gpu_counts.front(),
                                               scale, scn.sim.seed);
  config.recorder = recorder;
  const data::Dataset dataset = scenario::sim_dataset(scn, scale, scn.sim.seed);
  const auto policy = sim::make_policy(scn.sim.policies.front());
  return sim::simulate(config, dataset, *policy);
}

TEST(CritpathRecorder, RecordingIsObservationOnly) {
  // The zero-overhead-when-off guarantee's other half: recording ON must be
  // bit-identical to recording OFF on an existing scenario (recording off
  // vs. main is pinned by test_scenario.cpp's golden digests, which this PR
  // must not move).
  const scenario::Scenario& scn = scenario::get("fig8-imagenet1k");
  const sim::SimResult off = run_scenario_sim(scn, scn.sim.quick_scale, nullptr);
  DepGraphBuilder builder;
  const sim::SimResult on = run_scenario_sim(scn, scn.sim.quick_scale, &builder);
  sim::expect_results_identical(off, on);
  EXPECT_EQ(sim::fnv_digest(off), sim::fnv_digest(on));
  EXPECT_TRUE(builder.complete());
  EXPECT_GT(builder.graph().num_edges(), 0u);
}

TEST(CritpathRecorder, LongestPathMatchesEngineTotal) {
  // The graph reproduces the engine recurrence for overlapped, prestaged,
  // non-overlapped and zero-I/O policies alike.  FP association differs
  // (the engine divides a running sum by p0; the graph sums pre-divided
  // increments), hence near-equality, not bit-equality.
  const scenario::Scenario& scn = scenario::get("runtime-validation");
  int checked = 0;
  for (const std::string& policy_name : scn.sim.policies) {
    sim::SimConfig config = scenario::sim_config(scn, scn.sim.gpu_counts.front(),
                                                 1.0, scn.sim.seed);
    DepGraphBuilder builder;
    config.recorder = &builder;
    const data::Dataset dataset = scenario::sim_dataset(scn, 1.0, scn.sim.seed);
    const auto policy = sim::make_policy(policy_name);
    const sim::SimResult result = sim::simulate(config, dataset, *policy);
    if (!result.supported) continue;  // e.g. lbann-dynamic is a stub policy
    const double path = builder.graph().end_to_end_s();
    EXPECT_NEAR(path, result.total_s, 1e-9 * std::max(1.0, result.total_s))
        << policy_name;
    ++checked;
  }
  EXPECT_GE(checked, 3);
}

// ---------------------------------------------------------------------------
// micro-critpath: golden attribution + the what-if acceptance contract.

TEST(CritpathMicro, AttributionSumsToEndToEnd) {
  const scenario::Scenario& scn = scenario::get("micro-critpath");
  DepGraphBuilder builder;
  const sim::SimResult result = run_scenario_sim(scn, 1.0, &builder);
  ASSERT_TRUE(result.supported);

  const Attribution attr = critpath::attribute(builder.graph());
  // Per-resource shares sum to the end-to-end time (the buckets regroup the
  // same additions, so only FP reassociation separates them), and the
  // end-to-end time is the engine's total up to FP association.
  EXPECT_NEAR(attr.path_sum_s(), attr.end_to_end_s, 1e-9);
  EXPECT_NEAR(attr.end_to_end_s, result.total_s, 1e-9 * result.total_s);
  EXPECT_NEAR(builder.engine_total_s(), result.total_s, 0.0);

  // Golden shape of the micro-critpath run: a PFS-heavy NoPFS epoch-0 makes
  // PFS and compute the only meaningful owners, with a small staging share.
  EXPECT_EQ(attr.binding(), Resource::kCompute);
  EXPECT_GT(attr.resource_s(Resource::kCompute), 0.45 * attr.end_to_end_s);
  EXPECT_GT(attr.resource_s(Resource::kPfs), 0.30 * attr.end_to_end_s);
  EXPECT_GT(attr.resource_s(Resource::kStaging), 0.0);
  EXPECT_DOUBLE_EQ(attr.resource_s(Resource::kAllreduce), 0.0);
  EXPECT_DOUBLE_EQ(attr.resource_s(Resource::kJoin), 0.0);
}

TEST(CritpathMicro, WhatIfCellsReuseOneRecordingAndSpeedupsAreMonotone) {
  const scenario::Scenario& scn = scenario::get("micro-critpath");
  DepGraphBuilder builder;
  ASSERT_TRUE(run_scenario_sim(scn, 1.0, &builder).supported);
  const DepGraph& graph = builder.graph();
  const std::size_t edges_before = graph.num_edges();

  // >= 3 what-if cells from ONE recorded graph, no re-simulation (the graph
  // is not even mutated by the walks).
  const Attribution recorded = critpath::attribute(graph);
  std::vector<Attribution> cells;
  for (const std::string& spec : critpath::Registry::default_whatif()) {
    const auto model = critpath::Registry::instance().make(spec);
    cells.push_back(critpath::attribute(graph, model.get()));
  }
  ASSERT_GE(cells.size(), 3u);
  EXPECT_EQ(graph.num_edges(), edges_before);

  // Monotonicity: a pure speedup can never lengthen the critical path, and
  // more of the same speedup helps at least as much.
  const auto pfs2 = critpath::make_scale_model("pfs=2x");
  const auto pfs4 = critpath::make_scale_model("pfs=4x");
  const auto slow_nic = critpath::make_scale_model("nic=0.5x");
  const double recorded_s = recorded.end_to_end_s;
  const double pfs2_s = critpath::attribute(graph, pfs2.get()).end_to_end_s;
  const double pfs4_s = critpath::attribute(graph, pfs4.get()).end_to_end_s;
  const double slow_nic_s =
      critpath::attribute(graph, slow_nic.get()).end_to_end_s;
  EXPECT_LE(pfs2_s, recorded_s);
  EXPECT_LE(pfs4_s, pfs2_s);
  EXPECT_LT(pfs2_s, recorded_s);   // PFS is on the path, so 2x genuinely helps
  EXPECT_GE(slow_nic_s, recorded_s);  // and a slowdown never shortens it
}

}  // namespace
}  // namespace nopfs
