// Tests for the metadata store and the memory/filesystem storage backends
// (paper Sec. 5.2.2).

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "core/metadata_store.hpp"
#include "core/storage_backend.hpp"
#include "data/materialize.hpp"

namespace nopfs::core {
namespace {

namespace fs = std::filesystem;

TEST(MetadataStore, InsertFindErase) {
  MetadataStore store(2);
  EXPECT_TRUE(store.insert(7, 0, 1.5));
  EXPECT_FALSE(store.insert(7, 1, 1.5));  // duplicate
  EXPECT_TRUE(store.contains(7));
  EXPECT_EQ(store.find(7), std::optional<int>(0));
  EXPECT_EQ(store.find(8), std::nullopt);
  EXPECT_DOUBLE_EQ(store.used_mb(0), 1.5);
  EXPECT_EQ(store.count(0), 1u);
  EXPECT_EQ(store.erase(7), std::optional<int>(0));
  EXPECT_DOUBLE_EQ(store.used_mb(0), 0.0);
  EXPECT_EQ(store.erase(7), std::nullopt);
  EXPECT_EQ(store.total_count(), 0u);
}

TEST(MetadataStore, PerClassAccounting) {
  MetadataStore store(3);
  store.insert(1, 0, 1.0);
  store.insert(2, 1, 2.0);
  store.insert(3, 1, 3.0);
  EXPECT_DOUBLE_EQ(store.used_mb(1), 5.0);
  EXPECT_EQ(store.count(1), 2u);
  EXPECT_EQ(store.total_count(), 3u);
}

TEST(MetadataStore, InvalidClassRejected) {
  MetadataStore store(1);
  EXPECT_THROW(store.insert(1, 5, 1.0), std::out_of_range);
  EXPECT_THROW(store.insert(1, -1, 1.0), std::out_of_range);
  EXPECT_THROW(MetadataStore(-1), std::invalid_argument);
}

TEST(MetadataStore, ThreadSafety) {
  MetadataStore store(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 500; ++i) {
        store.insert(static_cast<data::SampleId>(t * 1000 + i), t % 2, 0.1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(store.total_count(), 2000u);
  EXPECT_NEAR(store.used_mb(0) + store.used_mb(1), 200.0, 1e-6);
}

TEST(MemoryBackend, StoreLoadErase) {
  MemoryBackend backend(1.0);  // 1 MB
  const Bytes bytes = {1, 2, 3, 4};
  EXPECT_TRUE(backend.store(5, bytes));
  EXPECT_FALSE(backend.store(5, bytes));  // duplicate
  EXPECT_TRUE(backend.contains(5));
  EXPECT_EQ(backend.load(5), std::optional<Bytes>(bytes));
  EXPECT_FALSE(backend.load(6).has_value());
  EXPECT_TRUE(backend.erase(5));
  EXPECT_FALSE(backend.erase(5));
  EXPECT_DOUBLE_EQ(backend.used_mb(), 0.0);
}

TEST(MemoryBackend, CapacityEnforced) {
  MemoryBackend backend(1.0);  // 1 MB
  const Bytes half(512 * 1024, 7);
  EXPECT_TRUE(backend.store(1, half));
  EXPECT_TRUE(backend.store(2, half));
  EXPECT_FALSE(backend.store(3, half));  // over capacity
  EXPECT_NEAR(backend.used_mb(), 1.0, 1e-9);
  backend.erase(1);
  EXPECT_TRUE(backend.store(3, half));
}

TEST(FilesystemBackend, StoreLoadWithMmap) {
  const fs::path dir = fs::temp_directory_path() / "nopfs_test_fsbackend1";
  {
    FilesystemBackend backend(dir, 10.0);
    Bytes bytes(8192);
    data::fill_sample_content(3, bytes);
    EXPECT_TRUE(backend.store(3, bytes));
    EXPECT_TRUE(backend.contains(3));
    const auto loaded = backend.load(3);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, bytes);
    EXPECT_TRUE(data::verify_sample_content(3, *loaded));
    EXPECT_GT(backend.used_mb(), 0.0);
    EXPECT_TRUE(backend.erase(3));
    EXPECT_FALSE(backend.load(3).has_value());
  }
  EXPECT_FALSE(fs::exists(dir));  // cleaned up
}

TEST(FilesystemBackend, CapacityEnforced) {
  const fs::path dir = fs::temp_directory_path() / "nopfs_test_fsbackend2";
  FilesystemBackend backend(dir, 0.01);  // ~10 KB
  const Bytes big(8 * 1024, 1);
  EXPECT_TRUE(backend.store(1, big));
  EXPECT_FALSE(backend.store(2, big));
}

TEST(FilesystemBackend, DuplicateRejected) {
  const fs::path dir = fs::temp_directory_path() / "nopfs_test_fsbackend3";
  FilesystemBackend backend(dir, 10.0);
  const Bytes bytes(128, 9);
  EXPECT_TRUE(backend.store(1, bytes));
  EXPECT_FALSE(backend.store(1, bytes));
}

TEST(FilesystemBackend, ConcurrentStoresRespectCapacity) {
  const fs::path dir = fs::temp_directory_path() / "nopfs_test_fsbackend4";
  FilesystemBackend backend(dir, 0.5);  // 512 KB
  const Bytes chunk(64 * 1024, 3);      // 16 chunks max but capacity holds 8
  std::atomic<int> stored{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        if (backend.store(static_cast<data::SampleId>(t * 100 + i), chunk)) ++stored;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(stored.load(), 8);
  EXPECT_LE(backend.used_mb(), 0.5 + 1e-9);
}

TEST(Backends, EmptyPayload) {
  MemoryBackend mem(1.0);
  EXPECT_TRUE(mem.store(1, {}));
  ASSERT_TRUE(mem.load(1).has_value());
  EXPECT_TRUE(mem.load(1)->empty());

  const fs::path dir = fs::temp_directory_path() / "nopfs_test_fsbackend5";
  FilesystemBackend fsb(dir, 1.0);
  EXPECT_TRUE(fsb.store(1, {}));
  ASSERT_TRUE(fsb.load(1).has_value());
  EXPECT_TRUE(fsb.load(1)->empty());
}

}  // namespace
}  // namespace nopfs::core
