// Quickstart: the NoPFS Job API in ~40 lines.
//
// Mirrors the paper's Fig. 7 integration: construct a Job with the dataset,
// batch size, epoch count and shuffle kind, then iterate samples.  Here a
// single worker trains over a small synthetic dataset with an untimed
// in-process PFS; see imagenet_scaling.cpp and cosmoflow_pipeline.cpp for
// multi-worker runs on the emulated storage hierarchy.

#include <iostream>

#include "core/job.hpp"
#include "core/sample_source.hpp"
#include "data/dataset.hpp"
#include "tiers/params.hpp"
#include "util/units.hpp"

using namespace nopfs;

int main() {
  // A small dataset: 4,096 samples of ~64 KB.
  data::DatasetSpec spec;
  spec.name = "quickstart";
  spec.num_samples = 4'096;
  spec.mean_size_mb = 0.0625;
  spec.stddev_size_mb = 0.01;
  const data::Dataset dataset = data::Dataset::synthetic(spec, /*seed=*/1);

  // One worker with the paper's simulated-cluster storage hierarchy.
  tiers::SystemParams system = tiers::presets::sim_cluster(/*num_workers=*/1);
  system.node.classes[0].capacity_mb = 128.0;  // shrink RAM for the demo
  system.node.classes[1].capacity_mb = 256.0;  // and SSD

  // The dataset at rest: an emulated PFS with verifiable synthetic bytes.
  core::SyntheticPfsSource pfs(dataset, /*device=*/nullptr);

  // The NoPFS Job: 2 epochs, global batch 32, seeded shuffle.
  core::JobOptions options;
  options.seed = 42;
  options.num_epochs = 2;
  options.global_batch = 32;
  core::Job job(dataset, system, /*rank=*/0, options, pfs);
  job.start();

  std::uint64_t consumed = 0;
  std::uint64_t bytes = 0;
  while (auto sample = job.next()) {      // iterator-style access
    bytes += sample->data().size();      // zero-copy staging-buffer view
    ++consumed;                           // (handle release frees the slot)
  }

  const core::JobStats stats = job.stats();
  std::cout << "consumed " << consumed << " samples ("
            << util::format_size_mb(util::bytes_to_mb(bytes)) << ")\n"
            << "fetches: " << stats.pfs_fetches << " pfs, " << stats.local_fetches
            << " local cache hits\n"
            << "planned cache: " << job.cache_plan().total_samples()
            << " samples across " << job.cache_plan().per_class.size()
            << " storage classes\n";
  std::cout << "epoch 1 was served almost entirely from local caches -- the\n"
               "clairvoyant plan placed every sample before it was needed.\n";
  return 0;
}
