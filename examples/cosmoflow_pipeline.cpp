// CosmoFlow-style scientific pipeline: large fixed-size samples streamed by
// real NoPFS code (threads, staging buffer, prefetchers, transport) on a
// miniature emulated cluster — the threaded runtime rather than the
// analytic simulator.  Every delivered sample is verified byte-for-byte.
//
//   ./cosmoflow_pipeline

#include <iostream>

#include "runtime/harness.hpp"
#include "tiers/params.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace nopfs;

int main() {
  // A scaled-down CosmoFlow: 128 samples of 2 MB (same fixed-size,
  // large-sample character as the 16.8 MB originals).
  data::DatasetSpec spec;
  spec.name = "cosmoflow-mini";
  spec.num_samples = 128;
  spec.mean_size_mb = 2.0;
  spec.stddev_size_mb = 0.0;
  const data::Dataset dataset = data::Dataset::synthetic(spec, 7);

  runtime::RuntimeConfig config;
  config.system = tiers::presets::sim_cluster(4);
  config.system.node.staging.capacity_mb = 8.0;
  config.system.node.staging.prefetch_threads = 2;
  config.system.node.classes[0].capacity_mb = 48.0;   // RAM
  config.system.node.classes[1].capacity_mb = 96.0;   // SSD
  config.system.node.compute_mbps = 400.0;            // 3D CNN, ~200 samples/s
  config.system.node.preprocess_mbps = 2'000.0;       // log-normalize is cheap
  config.system.pfs.agg_read_mbps =
      util::ThroughputCurve({{1, 100}, {2, 140}, {4, 170}});
  config.loader = baselines::LoaderKind::kNoPFS;
  config.seed = 99;
  config.num_epochs = 3;
  config.per_worker_batch = 4;
  config.time_scale = 100.0;
  config.verify_content = true;

  std::cout << "CosmoFlow-mini: " << util::format_size_mb(dataset.total_mb())
            << " across 4 workers, 3 epochs, real NoPFS runtime\n\n";

  util::Table table({"Loader", "total", "epoch0", "epoch1", "epoch2", "pfs",
                     "local", "remote", "verified"});
  for (const auto kind :
       {baselines::LoaderKind::kNoPFS, baselines::LoaderKind::kPyTorch}) {
    config.loader = kind;
    const runtime::RuntimeResult result = runtime::run_training(dataset, config);
    table.add_row({baselines::loader_kind_name(kind),
                   util::format_seconds(result.total_s),
                   util::format_seconds(result.epoch_s.at(0)),
                   util::format_seconds(result.epoch_s.at(1)),
                   util::format_seconds(result.epoch_s.at(2)),
                   std::to_string(result.stats.pfs_fetches),
                   std::to_string(result.stats.local_fetches),
                   std::to_string(result.stats.remote_fetches),
                   std::to_string(result.verified_samples) + "/" +
                       std::to_string(result.verified_samples +
                                      result.verification_failures)});
  }
  table.print(std::cout);
  std::cout << "\nAfter epoch 0, NoPFS serves the big volumes from node-local\n"
               "caches and peers; the double-buffering loader keeps paying the\n"
               "contended PFS every epoch.\n";
  return 0;
}
