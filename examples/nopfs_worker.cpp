// nopfs_worker: run a registered scenario (src/scenario) single- or
// multi-process from the command line.
//
// Multi-process (the SocketTransport launch path): start N copies, one per
// rank, pointing at the same rendezvous address; rank 0 hosts the
// rendezvous:
//
//   ./nopfs_worker --rank 0 --world-size 2 --rendezvous 127.0.0.1:19777 &
//   ./nopfs_worker --rank 1 --world-size 2 --rendezvous 127.0.0.1:19777
//
// Single-process (no --rendezvous): the scenario's whole world runs as
// threads in this process (runtime::run_training), which is what the CI
// scenario matrix drives:
//
//   ./nopfs_worker --scenario contention-pfs --quick
//   ./nopfs_worker --list-scenarios
//
// The scenario (default "worker-loopback") supplies the system, dataset and
// run shape; explicit flags (--samples, --epochs, ...) override it.  Every
// rank of a multi-process job must be launched with identical job flags:
// the access streams are derived from them.  The process prints (and with
// --json-out writes) the job-wide result, which is identical on every rank
// — stats are allgathered at the end of the run.  Exit status is nonzero on
// any verification failure, making the binary directly usable as a CI /
// ctest assertion.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "baselines/loader.hpp"
#include "runtime/harness.hpp"
#include "scenario/scenario.hpp"
#include "util/units.hpp"

using namespace nopfs;

namespace {

struct Args {
  std::string scenario = "worker-loopback";
  int rank = 0;
  int world_size = 0;  ///< 0 = scenario default (or 1 with --rendezvous)
  std::string rendezvous_host = "127.0.0.1";
  std::uint16_t rendezvous_port = 0;
  bool have_rendezvous = false;
  bool list_scenarios = false;
  bool quick = false;
  // Scenario overrides; "have_" flags distinguish "not passed" from any
  // sentinel value so explicit flags always win over the registry shape.
  std::string loader;
  std::uint64_t samples = 0;
  bool have_samples = false;
  int epochs = 0;
  std::uint64_t seed = 0;
  bool have_seed = false;
  std::uint64_t per_worker_batch = 0;
  double time_scale = 0.0;
  double timeout_s = 120.0;
  bool verify = true;
  bool per_process_pfs = false;
  // Gamma-gossip overrides (scenario defaults otherwise; DESIGN.md
  // Sec. 7.4).  flush < 0 = "not passed".
  double pfs_flush_virtual_s = -1.0;
  int pfs_max_batch = 0;
  bool thread_weighted_gamma = false;
  bool have_thread_weighted = false;
  std::string json_out;
};

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--scenario NAME] [--list-scenarios]\n"
         "          [--rank R --world-size N --rendezvous HOST:PORT]  (multi-process)\n"
         "          [--loader "
      << baselines::loader_flag_names()
      << "]\n"
         "          [--samples F] [--epochs E] [--seed S] [--per-worker-batch B]\n"
         "          [--time-scale X] [--timeout-s T] [--quick] [--no-verify]\n"
         "          [--json-out PATH]\n"
         "          [--per-process-pfs]   (opt out of job-wide PFS contention)\n"
         "          [--pfs-flush-interval VIRT_S] [--pfs-max-batch N]\n"
         "          [--thread-weighted-gamma]   (gamma counts reader threads)\n"
         "Without --rendezvous the scenario's world runs as threads in this\n"
         "process; with it this process is ONE rank (world size defaults to 1).\n";
}

bool parse_args(int argc, char** argv, Args& args) {
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) throw std::invalid_argument(std::string(argv[i]) + ": missing value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--scenario") {
      args.scenario = value(i);
    } else if (flag == "--list-scenarios") {
      args.list_scenarios = true;
    } else if (flag == "--rank") {
      args.rank = std::stoi(value(i));
    } else if (flag == "--world-size") {
      args.world_size = std::stoi(value(i));
    } else if (flag == "--rendezvous") {
      const std::string addr = value(i);
      const auto colon = addr.rfind(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("--rendezvous expects HOST:PORT");
      }
      args.rendezvous_host = addr.substr(0, colon);
      const int port = std::stoi(addr.substr(colon + 1));
      if (port < 1 || port > 65535) {
        throw std::invalid_argument("--rendezvous port out of range: " +
                                    std::to_string(port));
      }
      args.rendezvous_port = static_cast<std::uint16_t>(port);
      args.have_rendezvous = true;
    } else if (flag == "--loader") {
      args.loader = value(i);
    } else if (flag == "--samples") {
      args.samples = std::stoull(value(i));
      args.have_samples = true;
    } else if (flag == "--epochs") {
      args.epochs = std::stoi(value(i));
    } else if (flag == "--seed") {
      args.seed = std::stoull(value(i));
      args.have_seed = true;
    } else if (flag == "--per-worker-batch") {
      args.per_worker_batch = std::stoull(value(i));
    } else if (flag == "--time-scale") {
      args.time_scale = std::stod(value(i));
    } else if (flag == "--timeout-s") {
      args.timeout_s = std::stod(value(i));
    } else if (flag == "--quick") {
      args.quick = true;
    } else if (flag == "--no-verify") {
      args.verify = false;
    } else if (flag == "--per-process-pfs") {
      args.per_process_pfs = true;
    } else if (flag == "--pfs-flush-interval") {
      args.pfs_flush_virtual_s = std::stod(value(i));
      if (args.pfs_flush_virtual_s < 0.0) {
        throw std::invalid_argument("--pfs-flush-interval must be >= 0");
      }
    } else if (flag == "--pfs-max-batch") {
      args.pfs_max_batch = std::stoi(value(i));
      if (args.pfs_max_batch < 1) {
        throw std::invalid_argument("--pfs-max-batch must be >= 1");
      }
    } else if (flag == "--thread-weighted-gamma") {
      args.thread_weighted_gamma = true;
      args.have_thread_weighted = true;
    } else if (flag == "--json-out") {
      args.json_out = value(i);
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return false;
    } else {
      throw std::invalid_argument("unknown flag: " + flag);
    }
  }
  return true;
}

std::string result_json(const Args& args, const std::string& mode, int world_size,
                        std::uint64_t samples, int epochs, std::uint64_t seed,
                        const std::string& loader, const runtime::RuntimeResult& result) {
  std::ostringstream out;
  out.precision(6);
  out << "{\n"
      << "  \"scenario\": \"" << args.scenario << "\",\n"
      << "  \"mode\": \"" << mode << "\",\n"
      << "  \"rank\": " << args.rank << ",\n"
      << "  \"world_size\": " << world_size << ",\n"
      << "  \"loader\": \"" << loader << "\",\n"
      << "  \"samples\": " << samples << ",\n"
      << "  \"epochs\": " << epochs << ",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"total_s\": " << result.total_s << ",\n"
      << "  \"verified_samples\": " << result.verified_samples << ",\n"
      << "  \"verification_failures\": " << result.verification_failures << ",\n"
      << "  \"delivered_digest\": \"" << std::hex << result.delivered_digest
      << std::dec << "\",\n"
      << "  \"pfs_peak_gamma\": " << result.pfs_peak_gamma << ",\n"
      << "  \"stats\": {\n"
      << "    \"local_fetches\": " << result.stats.local_fetches << ",\n"
      << "    \"remote_fetches\": " << result.stats.remote_fetches << ",\n"
      << "    \"pfs_fetches\": " << result.stats.pfs_fetches << ",\n"
      << "    \"remote_misses\": " << result.stats.remote_misses << ",\n"
      << "    \"local_mb\": " << result.stats.local_mb << ",\n"
      << "    \"remote_mb\": " << result.stats.remote_mb << ",\n"
      << "    \"pfs_mb\": " << result.stats.pfs_mb << ",\n"
      << "    \"cached_samples\": " << result.stats.cached_samples << "\n"
      << "  }\n"
      << "}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    if (!parse_args(argc, argv, args)) return 0;

    if (args.list_scenarios) {
      for (const std::string& name : scenario::names()) std::cout << name << "\n";
      return 0;
    }

    const scenario::Scenario& scn = scenario::get(args.scenario);

    // Scenario shape with CLI overrides on top.
    const int world_size = args.world_size > 0     ? args.world_size
                           : args.have_rendezvous ? 1
                                                  : scn.worker.world_size;
    data::DatasetSpec spec = scn.worker.dataset;
    if (args.have_samples) spec.num_samples = args.samples;
    int epochs = args.epochs > 0 ? args.epochs : scn.worker.epochs;
    if (args.quick) {
      // CI smoke shape: a couple of epochs over at most 64 samples, but
      // never below one global batch — and never overriding a dimension the
      // user pinned explicitly (explicit flags always win).
      const std::uint64_t global =
          (args.per_worker_batch > 0 ? args.per_worker_batch
                                     : scn.worker.per_worker_batch) *
          static_cast<std::uint64_t>(world_size);
      if (!args.have_samples) {
        spec.num_samples =
            std::max(std::min<std::uint64_t>(spec.num_samples, 64), global);
      }
      if (args.epochs <= 0) epochs = std::min(epochs, 2);
    }
    const auto dataset = data::Dataset::synthetic(spec, scn.worker.dataset_seed);

    runtime::RuntimeConfig config = scenario::runtime_config(scn, world_size);
    if (!args.loader.empty()) {
      config.loader = baselines::parse_loader_kind(args.loader);
    }
    if (args.have_seed) config.seed = args.seed;
    config.num_epochs = epochs;
    if (args.per_worker_batch > 0) config.per_worker_batch = args.per_worker_batch;
    if (args.time_scale > 0.0) config.time_scale = args.time_scale;
    config.verify_content = args.verify;
    config.shared_pfs_contention = !args.per_process_pfs;
    if (args.pfs_flush_virtual_s >= 0.0) {
      config.pfs_gossip.flush_virtual_s = args.pfs_flush_virtual_s;
    }
    if (args.pfs_max_batch > 0) config.pfs_gossip.max_batch = args.pfs_max_batch;
    if (args.have_thread_weighted) {
      config.pfs_thread_weighted_gamma = args.thread_weighted_gamma;
    }

    runtime::RuntimeResult result;
    std::string mode;
    if (args.have_rendezvous) {
      mode = "multi-process";
      runtime::WorkerEndpoint endpoint;
      endpoint.rank = args.rank;
      endpoint.world_size = world_size;
      endpoint.rendezvous_host = args.rendezvous_host;
      endpoint.rendezvous_port = args.rendezvous_port;
      endpoint.timeout_s = args.timeout_s;
      result = runtime::run_distributed(dataset, config, endpoint);
    } else {
      mode = "single-process";
      result = runtime::run_training(dataset, config);
    }

    const std::string json = result_json(
        args, mode, world_size, dataset.num_samples(), config.num_epochs, config.seed,
        args.loader.empty() ? baselines::loader_flag_name(config.loader) : args.loader,
        result);
    std::cout << json;
    if (!args.json_out.empty()) {
      std::ofstream out(args.json_out);
      if (!out) {
        std::cerr << "cannot write " << args.json_out << "\n";
        return 2;
      }
      out << json;
    }
    return result.verification_failures == 0 ? 0 : 3;
  } catch (const std::exception& ex) {
    std::cerr << "nopfs_worker rank " << args.rank << ": " << ex.what() << "\n";
    return 1;
  }
}
