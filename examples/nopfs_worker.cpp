// nopfs_worker: run a registered scenario (src/scenario) single- or
// multi-process from the command line.
//
// Multi-process (the SocketTransport launch path): start N copies, one per
// rank, pointing at the same rendezvous address; rank 0 hosts the
// rendezvous:
//
//   ./nopfs_worker --rank 0 --world-size 2 --rendezvous 127.0.0.1:19777 &
//   ./nopfs_worker --rank 1 --world-size 2 --rendezvous 127.0.0.1:19777
//
// Single-process (no --rendezvous): the scenario's whole world runs as
// threads in this process (runtime::run_training), which is what the CI
// scenario matrix drives:
//
//   ./nopfs_worker --scenario contention-pfs --quick
//   ./nopfs_worker --list-scenarios
//
// Critical-path mode (--critpath) runs the scenario's SIMULATOR view once
// with dependence-graph recording (src/critpath/), prints the per-resource
// attribution of the end-to-end time, and re-walks the one recorded graph
// under what-if cost models instead of re-running the simulator:
//
//   ./nopfs_worker --scenario fig8-imagenet1k --critpath
//   ./nopfs_worker --scenario fig8-imagenet1k --critpath --whatif pfs=2x,nic=0.5x
//
// Each --whatif SPEC is one what-if cell; commas combine knobs within a
// cell ("pfs=2x,nic=0.5x" = both at once), repeat the flag for more cells.
// Without --whatif the registry's default sweep runs (pfs=2x, pfs=4x,
// nic=0.5x).  --list-scenarios --markdown emits the generated scenario
// reference (docs/SCENARIOS.md).
//
// Sweep-service mode (--sweep-scenario, DESIGN.md Sec. 10) runs the named
// scenario's SIMULATOR sweep grid through the distributed work-stealing
// sweep service instead of the runtime harness.  Single-process it stays
// in-process (still checkpointable); with --rendezvous each launched rank
// is one service member and rank 0 owns the grid:
//
//   ./nopfs_worker --sweep-scenario sweep-service --sweep-checkpoint ck.bin &
//   ./nopfs_worker --sweep-scenario sweep-service --resume ck.bin
//
// --sweep-checkpoint FILE enables periodic checkpointing; --resume FILE
// implies it AND folds the file's completed cells before granting, so a
// killed sweep re-runs nothing it already finished.  --sweep-interrupt-after
// N deterministically emulates a mid-sweep kill after N completed cells
// (the CI kill/resume smoke).  Rank 0 prints the ordered-results digest —
// bit-identical to the serial SweepRunner by contract.
//
// Elastic worlds (--sweep-elastic, DESIGN.md Sec. 11): pass
// --sweep-max-world M on EVERY rank and the sweep tolerates membership
// churn up to M workers.  A late joiner is launched like any other rank but
// with --rank >= --world-size — it rendezvouses mid-sweep and just starts
// pulling.  --sweep-abandon-after N scripts a deterministic mid-sweep
// worker death: after N granted-and-reported pulls the rank takes one more
// grant and vanishes; rank 0's tail re-grants recover its cells and the
// digest stays bit-identical (the CI kill-one-rank smoke).
//
// The scenario (default "worker-loopback") supplies the system, dataset and
// run shape; explicit flags (--samples, --epochs, ...) override it.  Every
// rank of a multi-process job must be launched with identical job flags:
// the access streams are derived from them.  The process prints (and with
// --json-out writes) the job-wide result, which is identical on every rank
// — stats are allgathered at the end of the run.  Exit status is nonzero on
// any verification failure, making the binary directly usable as a CI /
// ctest assertion.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <memory>
#include <vector>

#include "baselines/loader.hpp"
#include "critpath/cp_attribution.hpp"
#include "net/reactor.hpp"
#include "critpath/cp_dep_graph.hpp"
#include "critpath/cp_registry.hpp"
#include "runtime/harness.hpp"
#include "runtime/sweep_job.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/policies.hpp"
#include "sim/sweep_service.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace nopfs;

namespace {

struct Args {
  std::string scenario = "worker-loopback";
  int rank = 0;
  int world_size = 0;  ///< 0 = scenario default (or 1 with --rendezvous)
  std::string rendezvous_host = "127.0.0.1";
  std::uint16_t rendezvous_port = 0;
  bool have_rendezvous = false;
  bool list_scenarios = false;
  bool markdown = false;   ///< with --list-scenarios: emit docs/SCENARIOS.md
  bool critpath = false;   ///< critical-path attribution + what-if mode
  std::vector<std::string> whatif;  ///< what-if cells (--whatif, repeatable)
  bool sweep = false;               ///< --sweep-scenario: sweep-service mode
  std::string sweep_checkpoint;     ///< checkpoint file ("" = none)
  bool sweep_resume = false;        ///< fold the checkpoint before granting
  std::uint64_t sweep_interrupt_after = 0;  ///< emulate a kill after N cells
  int sweep_threads = 0;            ///< per-rank cell threads (0 = auto)
  bool sweep_elastic = false;       ///< elastic membership (DESIGN.md Sec. 11)
  int sweep_max_world = 0;          ///< largest elastic world (0 = world size)
  int sweep_abandon_after = 0;      ///< die after N reported pulls (elastic)
  bool quick = false;
  // Scenario overrides; "have_" flags distinguish "not passed" from any
  // sentinel value so explicit flags always win over the registry shape.
  std::string loader;
  std::uint64_t samples = 0;
  bool have_samples = false;
  int epochs = 0;
  std::uint64_t seed = 0;
  bool have_seed = false;
  std::uint64_t per_worker_batch = 0;
  double time_scale = 0.0;
  double timeout_s = 120.0;
  bool verify = true;
  bool per_process_pfs = false;
  // Gamma-gossip overrides (scenario defaults otherwise; DESIGN.md
  // Sec. 7.4).  flush < 0 = "not passed".
  double pfs_flush_virtual_s = -1.0;
  int pfs_max_batch = 0;
  bool thread_weighted_gamma = false;
  bool have_thread_weighted = false;
  std::string json_out;
  /// Event-loop backend for the multi-process transport ("" = scenario
  /// shape, which defaults to auto → NOPFS_REACTOR env → kernel probe).
  std::string reactor;
  /// --probe-reactor BACKEND: exit 0 iff BACKEND can run here (CI uses
  /// this to green-skip io_uring matrix legs on kernels that deny rings).
  std::string probe_reactor;
};

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--scenario NAME] [--list-scenarios [--markdown]]\n"
         "          [--critpath [--whatif SPEC]...]  (simulator critical path)\n"
         "          [--sweep-scenario NAME [--sweep-checkpoint FILE | --resume FILE]\n"
         "           [--sweep-interrupt-after N] [--sweep-threads T]\n"
         "           [--sweep-elastic] [--sweep-max-world M]\n"
         "           [--sweep-abandon-after N]]  (sweep service)\n"
         "          [--rank R --world-size N --rendezvous HOST:PORT]  (multi-process)\n"
         "          [--reactor auto|epoll|io_uring] [--probe-reactor BACKEND]\n"
         "          [--loader "
      << baselines::loader_flag_names()
      << "]\n"
         "          [--samples F] [--epochs E] [--seed S] [--per-worker-batch B]\n"
         "          [--time-scale X] [--timeout-s T] [--quick] [--no-verify]\n"
         "          [--json-out PATH]\n"
         "          [--per-process-pfs]   (opt out of job-wide PFS contention)\n"
         "          [--pfs-flush-interval VIRT_S] [--pfs-max-batch N]\n"
         "          [--thread-weighted-gamma]   (gamma counts reader threads)\n"
         "Without --rendezvous the scenario's world runs as threads in this\n"
         "process; with it this process is ONE rank (world size defaults to 1).\n";
}

bool parse_args(int argc, char** argv, Args& args) {
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) throw std::invalid_argument(std::string(argv[i]) + ": missing value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--scenario") {
      args.scenario = value(i);
    } else if (flag == "--list-scenarios") {
      args.list_scenarios = true;
    } else if (flag == "--markdown") {
      args.markdown = true;
    } else if (flag == "--critpath") {
      args.critpath = true;
    } else if (flag == "--whatif") {
      args.whatif.emplace_back(value(i));
    } else if (flag == "--sweep-scenario") {
      args.scenario = value(i);
      args.sweep = true;
    } else if (flag == "--sweep-checkpoint") {
      args.sweep_checkpoint = value(i);
    } else if (flag == "--resume") {
      args.sweep_checkpoint = value(i);
      args.sweep_resume = true;
    } else if (flag == "--sweep-interrupt-after") {
      args.sweep_interrupt_after = std::stoull(value(i));
    } else if (flag == "--sweep-threads") {
      args.sweep_threads = std::stoi(value(i));
      if (args.sweep_threads < 0) {
        throw std::invalid_argument("--sweep-threads must be >= 0");
      }
    } else if (flag == "--sweep-elastic") {
      args.sweep_elastic = true;
    } else if (flag == "--sweep-max-world") {
      args.sweep_max_world = std::stoi(value(i));
      if (args.sweep_max_world < 0) {
        throw std::invalid_argument("--sweep-max-world must be >= 0");
      }
    } else if (flag == "--sweep-abandon-after") {
      args.sweep_abandon_after = std::stoi(value(i));
      if (args.sweep_abandon_after < 0) {
        throw std::invalid_argument("--sweep-abandon-after must be >= 0");
      }
    } else if (flag == "--rank") {
      args.rank = std::stoi(value(i));
    } else if (flag == "--world-size") {
      args.world_size = std::stoi(value(i));
    } else if (flag == "--rendezvous") {
      const std::string addr = value(i);
      const auto colon = addr.rfind(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("--rendezvous expects HOST:PORT");
      }
      args.rendezvous_host = addr.substr(0, colon);
      const int port = std::stoi(addr.substr(colon + 1));
      if (port < 1 || port > 65535) {
        throw std::invalid_argument("--rendezvous port out of range: " +
                                    std::to_string(port));
      }
      args.rendezvous_port = static_cast<std::uint16_t>(port);
      args.have_rendezvous = true;
    } else if (flag == "--loader") {
      args.loader = value(i);
    } else if (flag == "--samples") {
      args.samples = std::stoull(value(i));
      args.have_samples = true;
    } else if (flag == "--epochs") {
      args.epochs = std::stoi(value(i));
    } else if (flag == "--seed") {
      args.seed = std::stoull(value(i));
      args.have_seed = true;
    } else if (flag == "--per-worker-batch") {
      args.per_worker_batch = std::stoull(value(i));
    } else if (flag == "--time-scale") {
      args.time_scale = std::stod(value(i));
    } else if (flag == "--timeout-s") {
      args.timeout_s = std::stod(value(i));
    } else if (flag == "--quick") {
      args.quick = true;
    } else if (flag == "--no-verify") {
      args.verify = false;
    } else if (flag == "--per-process-pfs") {
      args.per_process_pfs = true;
    } else if (flag == "--pfs-flush-interval") {
      args.pfs_flush_virtual_s = std::stod(value(i));
      if (args.pfs_flush_virtual_s < 0.0) {
        throw std::invalid_argument("--pfs-flush-interval must be >= 0");
      }
    } else if (flag == "--pfs-max-batch") {
      args.pfs_max_batch = std::stoi(value(i));
      if (args.pfs_max_batch < 1) {
        throw std::invalid_argument("--pfs-max-batch must be >= 1");
      }
    } else if (flag == "--thread-weighted-gamma") {
      args.thread_weighted_gamma = true;
      args.have_thread_weighted = true;
    } else if (flag == "--json-out") {
      args.json_out = value(i);
    } else if (flag == "--reactor") {
      args.reactor = value(i);
      net::ReactorBackend parsed = net::ReactorBackend::kAuto;
      if (!net::parse_reactor_backend(args.reactor, parsed)) {
        throw std::invalid_argument("--reactor expects auto|epoll|io_uring, got " +
                                    args.reactor);
      }
    } else if (flag == "--probe-reactor") {
      args.probe_reactor = value(i);
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return false;
    } else {
      throw std::invalid_argument("unknown flag: " + flag);
    }
  }
  return true;
}

/// Backend for the multi-process transport: CLI flag > scenario shape >
/// auto (which defers to NOPFS_REACTOR and the kernel probe inside the
/// transport).  Both strings were validated earlier, so parse cannot fail.
net::ReactorBackend resolve_backend(const Args& args, const scenario::Scenario& scn) {
  const std::string& name = !args.reactor.empty() ? args.reactor : scn.worker.reactor;
  net::ReactorBackend backend = net::ReactorBackend::kAuto;
  if (!net::parse_reactor_backend(name, backend)) {
    throw std::invalid_argument("bad reactor backend: " + name);
  }
  return backend;
}

std::string result_json(const Args& args, const std::string& mode, int world_size,
                        std::uint64_t samples, int epochs, std::uint64_t seed,
                        const std::string& loader, const runtime::RuntimeResult& result) {
  std::ostringstream out;
  out.precision(6);
  out << "{\n"
      << "  \"scenario\": \"" << args.scenario << "\",\n"
      << "  \"mode\": \"" << mode << "\",\n"
      << "  \"rank\": " << args.rank << ",\n"
      << "  \"world_size\": " << world_size << ",\n"
      << "  \"loader\": \"" << loader << "\",\n"
      << "  \"samples\": " << samples << ",\n"
      << "  \"epochs\": " << epochs << ",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"total_s\": " << result.total_s << ",\n"
      << "  \"verified_samples\": " << result.verified_samples << ",\n"
      << "  \"verification_failures\": " << result.verification_failures << ",\n"
      << "  \"delivered_digest\": \"" << std::hex << result.delivered_digest
      << std::dec << "\",\n"
      << "  \"pfs_peak_gamma\": " << result.pfs_peak_gamma << ",\n"
      << "  \"reactor_backend\": \"" << result.reactor_backend << "\",\n"
      << "  \"stats\": {\n"
      << "    \"local_fetches\": " << result.stats.local_fetches << ",\n"
      << "    \"remote_fetches\": " << result.stats.remote_fetches << ",\n"
      << "    \"pfs_fetches\": " << result.stats.pfs_fetches << ",\n"
      << "    \"remote_misses\": " << result.stats.remote_misses << ",\n"
      << "    \"local_mb\": " << result.stats.local_mb << ",\n"
      << "    \"remote_mb\": " << result.stats.remote_mb << ",\n"
      << "    \"pfs_mb\": " << result.stats.pfs_mb << ",\n"
      << "    \"cached_samples\": " << result.stats.cached_samples << "\n"
      << "  }\n"
      << "}\n";
  return out.str();
}

/// --critpath: record the scenario's simulator view once, attribute the
/// critical path, and re-walk the one recorded graph per what-if cell.
int run_critpath(const scenario::Scenario& scn, const Args& args) {
  const int gpus = scn.sim.gpu_counts.front();
  const double scale = scenario::pick_scale(scn, args.quick, /*full=*/false);
  const std::uint64_t seed = args.have_seed ? args.seed : scn.sim.seed;
  const std::string policy_name = scn.sim.policies.front();

  sim::SimConfig config = scenario::sim_config(scn, gpus, scale, seed);
  config.num_epochs =
      args.epochs > 0 ? args.epochs : scenario::pick_epochs(scn, args.quick);
  const data::Dataset dataset = scenario::sim_dataset(scn, scale, seed);
  const auto policy = sim::make_policy(policy_name);

  critpath::DepGraphBuilder builder;
  config.recorder = &builder;
  const sim::SimResult result = sim::simulate(config, dataset, *policy);
  if (!result.supported) {
    std::cerr << "critpath: policy " << policy_name
              << " cannot run this scenario: " << result.unsupported_reason
              << "\n";
    return 1;
  }

  const critpath::DepGraph& graph = builder.graph();
  const critpath::Attribution recorded = critpath::attribute(graph);
  std::cout << "critical path: " << scn.name << " | policy " << policy_name
            << " | " << gpus << " GPUs | scale " << scale << " | "
            << config.num_epochs << " epochs\n"
            << "recorded graph: " << graph.num_nodes() << " nodes, "
            << graph.num_edges() << " edges | engine total "
            << util::Table::num(builder.engine_total_s(), 3)
            << " s | longest path "
            << util::Table::num(recorded.end_to_end_s, 3) << " s\n"
            << "bound by: " << recorded.share_line() << "\n\n";

  util::Table resources({"resource", "tier", "seconds", "share", "path edges"});
  for (int r = 0; r < static_cast<int>(critpath::Resource::kCount); ++r) {
    const auto resource = static_cast<critpath::Resource>(r);
    const double s = recorded.resource_s(resource);
    if (s <= 0.0) continue;
    resources.add_row(
        {critpath::resource_name(resource), "-", util::Table::num(s, 3),
         util::Table::num(100.0 * s / recorded.end_to_end_s, 1) + "%",
         std::to_string(
             recorded.edges[static_cast<std::size_t>(resource)])});
  }
  for (const auto& [tier, s] : recorded.local_tier_s) {
    resources.add_row({"local", std::to_string(tier), util::Table::num(s, 3),
                       util::Table::num(100.0 * s / recorded.end_to_end_s, 1) +
                           "%",
                       "-"});
  }
  for (const auto& [tier, s] : recorded.remote_tier_s) {
    resources.add_row({"remote", std::to_string(tier), util::Table::num(s, 3),
                       util::Table::num(100.0 * s / recorded.end_to_end_s, 1) +
                           "%",
                       "-"});
  }
  resources.print(std::cout);

  // What-if cells: each spec re-walks the recorded graph under a scaled
  // cost model — no re-simulation.
  const std::vector<std::string> cells =
      args.whatif.empty() ? critpath::Registry::default_whatif() : args.whatif;
  std::cout << "\nwhat-if (one recorded graph, " << cells.size()
            << " re-walked cells):\n";
  util::Table whatif({"model", "end-to-end", "vs recorded", "bound by"});
  whatif.add_row({"recorded", util::Table::num(recorded.end_to_end_s, 3) + " s",
                  "1.00x", critpath::resource_name(recorded.binding())});
  for (const std::string& spec : cells) {
    const std::unique_ptr<critpath::CostModel> model =
        critpath::Registry::instance().make(spec);
    const critpath::Attribution cell = critpath::attribute(graph, model.get());
    whatif.add_row(
        {cell.model, util::Table::num(cell.end_to_end_s, 3) + " s",
         util::Table::num(recorded.end_to_end_s / cell.end_to_end_s, 2) + "x",
         critpath::resource_name(cell.binding())});
  }
  whatif.print(std::cout);
  return 0;
}

/// --sweep-scenario: run the scenario's simulator sweep grid through the
/// distributed sweep service (runtime::run_sweep_job).  Rank 0 prints (and
/// with --json-out writes) the job report including the ordered-results
/// digest; other ranks print their own share.  Exit 3 when an uninterrupted
/// sweep failed to complete its grid.
int run_sweep(const scenario::Scenario& scn, const Args& args) {
  const double scale = scenario::pick_scale(scn, args.quick, /*full=*/false);
  const std::uint64_t seed = args.have_seed ? args.seed : scn.sim.seed;
  const int epochs =
      args.epochs > 0 ? args.epochs : scenario::pick_epochs(scn, args.quick);
  const data::Dataset dataset = scenario::sim_dataset(scn, scale, seed);
  std::vector<sim::SweepPoint> points =
      scenario::sweep_points(scn, dataset, scale, seed);
  for (sim::SweepPoint& point : points) point.config.num_epochs = epochs;

  sim::SweepServiceOptions options;
  options.num_threads = args.sweep_threads;
  options.checkpoint_path = args.sweep_checkpoint;
  options.resume = args.sweep_resume;
  options.interrupt_after_cells = args.sweep_interrupt_after;
  options.elastic = args.sweep_elastic;
  options.max_workers = args.sweep_max_world;
  options.abandon_after_pulls = args.sweep_abandon_after;

  runtime::WorkerEndpoint endpoint;
  endpoint.rank = args.rank;
  // Without --rendezvous the sweep stays in-process regardless of
  // --world-size (there is no address to meet at).
  endpoint.world_size =
      args.have_rendezvous && args.world_size > 0 ? args.world_size : 1;
  endpoint.rendezvous_host = args.rendezvous_host;
  endpoint.rendezvous_port = args.rendezvous_port;
  endpoint.timeout_s = args.timeout_s;
  endpoint.reactor = resolve_backend(args, scn);

  const sim::SweepServiceReport report = runtime::run_sweep_job(points, endpoint, options);
  const bool root = args.rank == 0;
  const std::uint64_t digest =
      root ? sim::sweep_results_digest(report.results) : 0;
  const double cells_per_s =
      report.stats.wall_s > 0.0
          ? static_cast<double>(report.stats.completed_cells -
                                report.stats.restored_cells) /
                report.stats.wall_s
          : 0.0;

  std::ostringstream out;
  out.precision(6);
  out << "{\n"
      << "  \"scenario\": \"" << args.scenario << "\",\n"
      << "  \"mode\": \"sweep\",\n"
      << "  \"rank\": " << args.rank << ",\n"
      << "  \"world_size\": " << endpoint.world_size << ",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"epochs\": " << epochs << ",\n"
      << "  \"total_cells\": " << report.stats.total_cells << ",\n"
      << "  \"restored_cells\": " << report.stats.restored_cells << ",\n"
      << "  \"executed_cells\": " << report.stats.executed_cells << ",\n"
      << "  \"completed_cells\": " << report.stats.completed_cells << ",\n"
      << "  \"duplicate_cells\": " << report.stats.duplicate_cells << ",\n"
      << "  \"interrupted\": " << (report.stats.interrupted ? "true" : "false")
      << ",\n"
      << "  \"wall_s\": " << report.stats.wall_s << ",\n"
      << "  \"cells_per_s\": " << cells_per_s << ",\n"
      << "  \"results_digest\": \"" << std::hex << digest << std::dec << "\"\n"
      << "}\n";
  std::cout << out.str();
  if (!args.json_out.empty()) {
    std::ofstream file(args.json_out);
    if (!file) {
      std::cerr << "cannot write " << args.json_out << "\n";
      return 2;
    }
    file << out.str();
  }
  if (root && !report.stats.interrupted &&
      report.stats.completed_cells != report.stats.total_cells) {
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    if (!parse_args(argc, argv, args)) return 0;

    if (!args.probe_reactor.empty()) {
      // CI matrix gate: exit 0 iff the named backend can run on this
      // kernel.  epoll is always available; io_uring depends on the probe.
      net::ReactorBackend backend = net::ReactorBackend::kAuto;
      if (!net::parse_reactor_backend(args.probe_reactor, backend)) {
        std::cerr << "--probe-reactor expects auto|epoll|io_uring, got "
                  << args.probe_reactor << "\n";
        return 2;
      }
      const bool ok = backend != net::ReactorBackend::kIoUring ||
                      net::io_uring_available();
      std::cout << net::to_string(backend) << ": "
                << (ok ? "available" : "unavailable") << "\n";
      return ok ? 0 : 1;
    }

    if (args.list_scenarios) {
      if (args.markdown) {
        scenario::write_markdown_reference(std::cout);
      } else {
        for (const std::string& name : scenario::names()) std::cout << name << "\n";
      }
      return 0;
    }

    const scenario::Scenario& scn = scenario::get(args.scenario);

    if (args.critpath) return run_critpath(scn, args);
    if (args.sweep) return run_sweep(scn, args);

    // Scenario shape with CLI overrides on top.
    const int world_size = args.world_size > 0     ? args.world_size
                           : args.have_rendezvous ? 1
                                                  : scn.worker.world_size;
    data::DatasetSpec spec = scn.worker.dataset;
    if (args.have_samples) spec.num_samples = args.samples;
    int epochs = args.epochs > 0 ? args.epochs : scn.worker.epochs;
    if (args.quick) {
      // CI smoke shape: a couple of epochs over at most 64 samples, but
      // never below one global batch — and never overriding a dimension the
      // user pinned explicitly (explicit flags always win).
      const std::uint64_t global =
          (args.per_worker_batch > 0 ? args.per_worker_batch
                                     : scn.worker.per_worker_batch) *
          static_cast<std::uint64_t>(world_size);
      if (!args.have_samples) {
        spec.num_samples =
            std::max(std::min<std::uint64_t>(spec.num_samples, 64), global);
      }
      if (args.epochs <= 0) epochs = std::min(epochs, 2);
    }
    const auto dataset = data::Dataset::synthetic(spec, scn.worker.dataset_seed);

    runtime::RuntimeConfig config = scenario::runtime_config(scn, world_size);
    if (!args.loader.empty()) {
      config.loader = baselines::parse_loader_kind(args.loader);
    }
    if (args.have_seed) config.seed = args.seed;
    config.num_epochs = epochs;
    if (args.per_worker_batch > 0) config.per_worker_batch = args.per_worker_batch;
    if (args.time_scale > 0.0) config.time_scale = args.time_scale;
    config.verify_content = args.verify;
    config.shared_pfs_contention = !args.per_process_pfs;
    if (args.pfs_flush_virtual_s >= 0.0) {
      config.pfs_gossip.flush_virtual_s = args.pfs_flush_virtual_s;
    }
    if (args.pfs_max_batch > 0) config.pfs_gossip.max_batch = args.pfs_max_batch;
    if (args.have_thread_weighted) {
      config.pfs_thread_weighted_gamma = args.thread_weighted_gamma;
    }

    runtime::RuntimeResult result;
    std::string mode;
    if (args.have_rendezvous) {
      mode = "multi-process";
      runtime::WorkerEndpoint endpoint;
      endpoint.rank = args.rank;
      endpoint.world_size = world_size;
      endpoint.rendezvous_host = args.rendezvous_host;
      endpoint.rendezvous_port = args.rendezvous_port;
      endpoint.timeout_s = args.timeout_s;
      endpoint.reactor = resolve_backend(args, scn);
      result = runtime::run_distributed(dataset, config, endpoint);
    } else {
      mode = "single-process";
      result = runtime::run_training(dataset, config);
    }

    const std::string json = result_json(
        args, mode, world_size, dataset.num_samples(), config.num_epochs, config.seed,
        args.loader.empty() ? baselines::loader_flag_name(config.loader) : args.loader,
        result);
    std::cout << json;
    if (!args.json_out.empty()) {
      std::ofstream out(args.json_out);
      if (!out) {
        std::cerr << "cannot write " << args.json_out << "\n";
        return 2;
      }
      out << json;
    }
    return result.verification_failures == 0 ? 0 : 3;
  } catch (const std::exception& ex) {
    std::cerr << "nopfs_worker rank " << args.rank << ": " << ex.what() << "\n";
    return 1;
  }
}
