// nopfs_worker: one rank of a multi-process training run (the SocketTransport
// launch path).  Start N copies, one per rank, pointing at the same
// rendezvous address; rank 0 hosts the rendezvous:
//
//   ./nopfs_worker --rank 0 --world-size 2 --rendezvous 127.0.0.1:19777 &
//   ./nopfs_worker --rank 1 --world-size 2 --rendezvous 127.0.0.1:19777
//
// Every rank must be launched with identical job flags (seed, samples,
// epochs, batch, loader): the access streams are derived from them.  The
// process prints (and with --json-out writes) the job-wide result, which is
// identical on every rank — stats are allgathered at the end of the run.
// Exit status is nonzero on any verification failure, making the binary
// directly usable as a CI / ctest assertion.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "baselines/loader.hpp"
#include "runtime/harness.hpp"
#include "tiers/params.hpp"
#include "util/units.hpp"

using namespace nopfs;

namespace {

struct Args {
  int rank = 0;
  int world_size = 1;
  std::string rendezvous_host = "127.0.0.1";
  std::uint16_t rendezvous_port = 0;
  std::string loader = "nopfs";
  std::uint64_t samples = 96;
  int epochs = 2;
  std::uint64_t seed = 2025;
  std::uint64_t per_worker_batch = 4;
  double time_scale = 50.0;
  double timeout_s = 120.0;
  bool verify = true;
  bool per_process_pfs = false;
  std::string json_out;
};

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " --rank R --world-size N --rendezvous HOST:PORT\n"
         "          [--loader nopfs|naive|pytorch|dali|tfdata|sharded|lbann]\n"
         "          [--samples F] [--epochs E] [--seed S] [--per-worker-batch B]\n"
         "          [--time-scale X] [--timeout-s T] [--no-verify] [--json-out PATH]\n"
         "          [--per-process-pfs]   (opt out of job-wide PFS contention)\n";
}

baselines::LoaderKind parse_loader(const std::string& name) {
  if (name == "nopfs") return baselines::LoaderKind::kNoPFS;
  if (name == "naive") return baselines::LoaderKind::kNaive;
  if (name == "pytorch") return baselines::LoaderKind::kPyTorch;
  if (name == "dali") return baselines::LoaderKind::kDali;
  if (name == "tfdata") return baselines::LoaderKind::kTfData;
  if (name == "sharded") return baselines::LoaderKind::kSharded;
  if (name == "lbann") return baselines::LoaderKind::kLbann;
  throw std::invalid_argument("unknown loader: " + name);
}

bool parse_args(int argc, char** argv, Args& args) {
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) throw std::invalid_argument(std::string(argv[i]) + ": missing value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--rank") {
      args.rank = std::stoi(value(i));
    } else if (flag == "--world-size") {
      args.world_size = std::stoi(value(i));
    } else if (flag == "--rendezvous") {
      const std::string addr = value(i);
      const auto colon = addr.rfind(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("--rendezvous expects HOST:PORT");
      }
      args.rendezvous_host = addr.substr(0, colon);
      const int port = std::stoi(addr.substr(colon + 1));
      if (port < 1 || port > 65535) {
        throw std::invalid_argument("--rendezvous port out of range: " +
                                    std::to_string(port));
      }
      args.rendezvous_port = static_cast<std::uint16_t>(port);
    } else if (flag == "--loader") {
      args.loader = value(i);
    } else if (flag == "--samples") {
      args.samples = std::stoull(value(i));
    } else if (flag == "--epochs") {
      args.epochs = std::stoi(value(i));
    } else if (flag == "--seed") {
      args.seed = std::stoull(value(i));
    } else if (flag == "--per-worker-batch") {
      args.per_worker_batch = std::stoull(value(i));
    } else if (flag == "--time-scale") {
      args.time_scale = std::stod(value(i));
    } else if (flag == "--timeout-s") {
      args.timeout_s = std::stod(value(i));
    } else if (flag == "--no-verify") {
      args.verify = false;
    } else if (flag == "--per-process-pfs") {
      args.per_process_pfs = true;
    } else if (flag == "--json-out") {
      args.json_out = value(i);
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return false;
    } else {
      throw std::invalid_argument("unknown flag: " + flag);
    }
  }
  if (args.rendezvous_port == 0) {
    throw std::invalid_argument("--rendezvous HOST:PORT is required");
  }
  return true;
}

std::string result_json(const Args& args, const runtime::RuntimeResult& result) {
  std::ostringstream out;
  out.precision(6);
  out << "{\n"
      << "  \"rank\": " << args.rank << ",\n"
      << "  \"world_size\": " << args.world_size << ",\n"
      << "  \"loader\": \"" << args.loader << "\",\n"
      << "  \"samples\": " << args.samples << ",\n"
      << "  \"epochs\": " << args.epochs << ",\n"
      << "  \"seed\": " << args.seed << ",\n"
      << "  \"total_s\": " << result.total_s << ",\n"
      << "  \"verified_samples\": " << result.verified_samples << ",\n"
      << "  \"verification_failures\": " << result.verification_failures << ",\n"
      << "  \"delivered_digest\": \"" << std::hex << result.delivered_digest
      << std::dec << "\",\n"
      << "  \"pfs_peak_gamma\": " << result.pfs_peak_gamma << ",\n"
      << "  \"stats\": {\n"
      << "    \"local_fetches\": " << result.stats.local_fetches << ",\n"
      << "    \"remote_fetches\": " << result.stats.remote_fetches << ",\n"
      << "    \"pfs_fetches\": " << result.stats.pfs_fetches << ",\n"
      << "    \"remote_misses\": " << result.stats.remote_misses << ",\n"
      << "    \"local_mb\": " << result.stats.local_mb << ",\n"
      << "    \"remote_mb\": " << result.stats.remote_mb << ",\n"
      << "    \"pfs_mb\": " << result.stats.pfs_mb << ",\n"
      << "    \"cached_samples\": " << result.stats.cached_samples << "\n"
      << "  }\n"
      << "}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    if (!parse_args(argc, argv, args)) return 0;

    data::DatasetSpec spec;
    spec.name = "worker";
    spec.num_samples = args.samples;
    spec.mean_size_mb = 0.2;
    spec.stddev_size_mb = 0.05;
    const auto dataset = data::Dataset::synthetic(spec, 5);

    runtime::RuntimeConfig config;
    config.system = tiers::presets::sim_cluster(args.world_size);
    // Shrink the node to loopback-smoke scale: the preset's 5 GB staging
    // ring alone costs tens of seconds of allocation per rank, which would
    // dwarf a --samples 96 run.  Keep in sync with
    // tests/test_distributed_runtime.cpp, which compares against this
    // binary's results.
    config.system.node.staging.capacity_mb = 0.5;
    config.system.node.staging.prefetch_threads = 2;
    config.system.node.classes[0].capacity_mb = 16.0;  // RAM
    config.system.node.classes[1].capacity_mb = 32.0;  // "SSD" (memory-backed)
    config.system.node.compute_mbps = 50.0;
    config.system.node.preprocess_mbps = 500.0;
    config.system.pfs.agg_read_mbps =
        util::ThroughputCurve({{1, 20}, {2, 25}, {4, 30}});
    config.loader_threads = 2;
    config.lookahead = 8;
    config.loader = parse_loader(args.loader);
    config.seed = args.seed;
    config.num_epochs = args.epochs;
    config.per_worker_batch = args.per_worker_batch;
    config.time_scale = args.time_scale;
    config.verify_content = args.verify;
    config.shared_pfs_contention = !args.per_process_pfs;

    runtime::WorkerEndpoint endpoint;
    endpoint.rank = args.rank;
    endpoint.world_size = args.world_size;
    endpoint.rendezvous_host = args.rendezvous_host;
    endpoint.rendezvous_port = args.rendezvous_port;
    endpoint.timeout_s = args.timeout_s;

    const runtime::RuntimeResult result = runtime::run_distributed(dataset, config, endpoint);

    const std::string json = result_json(args, result);
    std::cout << json;
    if (!args.json_out.empty()) {
      std::ofstream out(args.json_out);
      if (!out) {
        std::cerr << "cannot write " << args.json_out << "\n";
        return 2;
      }
      out << json;
    }
    return result.verification_failures == 0 ? 0 : 3;
  } catch (const std::exception& ex) {
    std::cerr << "nopfs_worker rank " << args.rank << ": " << ex.what() << "\n";
    return 1;
  }
}
