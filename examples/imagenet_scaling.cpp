// ImageNet-style scaling study: how does NoPFS compare against a PyTorch
// DataLoader-style double-buffering loader as the job grows from 32 to 1024
// GPUs on a Lassen-like system?  Uses the performance simulator (the same
// engine behind the Fig. 10 bench) over the public policy API.
//
//   ./imagenet_scaling [--quick]

#include <iostream>

#include "data/dataset.hpp"
#include "sim/engine.hpp"
#include "sim/policies.hpp"
#include "tiers/params.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  data::DatasetSpec spec = data::presets::imagenet1k();
  if (args.quick) spec.num_samples /= 8;
  const data::Dataset dataset = data::Dataset::synthetic(spec, args.seed);

  std::cout << "ImageNet-1k (" << util::format_size_mb(dataset.total_mb())
            << ", " << dataset.num_samples() << " samples) on a Lassen-like "
               "system, 3 epochs\n\n";

  util::Table table({"#GPUs", "PyTorch epoch", "NoPFS epoch", "speedup",
                     "NoPFS pfs-read share"});
  for (const int gpus : {32, 128, 512, 1024}) {
    sim::SimConfig config;
    config.system = tiers::presets::lassen(gpus);
    if (args.quick) {
      for (auto& sc : config.system.node.classes) sc.capacity_mb /= 8;
    }
    config.seed = args.seed;
    config.num_epochs = 3;
    config.per_worker_batch = 120;

    sim::StagingBufferPolicy pytorch;
    const sim::SimResult p = sim::simulate(config, dataset, pytorch);
    sim::NoPFSPolicy nopfs;
    const sim::SimResult n = sim::simulate(config, dataset, nopfs);

    std::vector<double> p_rest(p.epoch_s.begin() + 1, p.epoch_s.end());
    std::vector<double> n_rest(n.epoch_s.begin() + 1, n.epoch_s.end());
    const double p_epoch = util::median(p_rest);
    const double n_epoch = util::median(n_rest);
    table.add_row({std::to_string(gpus), util::format_seconds(p_epoch),
                   util::format_seconds(n_epoch),
                   util::Table::num(p_epoch / n_epoch, 2) + "x",
                   util::Table::num(n.count_share(sim::Location::kPfs) * 100.0, 1) +
                       " %"});
  }
  table.print(std::cout);
  std::cout << "\nNoPFS's advantage appears exactly where the PFS saturates; its\n"
               "clairvoyant caches absorb the contention the baseline cannot avoid.\n";
  return 0;
}
