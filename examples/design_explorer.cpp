// Design explorer: the Fig. 9-style what-if tool.  Given a dataset and a
// candidate storage hierarchy, how much does adding RAM or SSD help
// training time under NoPFS?  Useful when sizing a new cluster or deciding
// an upgrade (paper Sec. 6.2).
//
//   ./design_explorer [--dataset imagenet1k|imagenet22k|...] [--quick]

#include <cstring>
#include <iostream>

#include "data/dataset.hpp"
#include "sim/engine.hpp"
#include "sim/policies.hpp"
#include "tiers/params.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  std::string dataset_name = "imagenet1k";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dataset") == 0 && i + 1 < argc) {
      dataset_name = argv[++i];
    }
  }

  data::DatasetSpec spec = data::presets::by_name(dataset_name);
  const double scale = args.quick ? 1.0 / 32.0 : 1.0 / 8.0;
  spec.num_samples = std::max<std::uint64_t>(
      2'000, static_cast<std::uint64_t>(spec.num_samples * scale));
  const data::Dataset dataset = data::Dataset::synthetic(spec, args.seed);

  std::cout << "Design exploration for " << dataset_name << " ("
            << util::format_size_mb(dataset.total_mb()) << " at 1/"
            << static_cast<int>(1.0 / scale) << " scale), 4 workers, NoPFS\n\n";

  const double rams_gb[] = {8, 16, 32, 64};
  const double ssds_gb[] = {0, 32, 64, 128};

  std::vector<std::string> header = {"RAM \\ SSD (GB)"};
  for (const double ssd : ssds_gb) header.push_back(util::Table::num(ssd, 0));
  util::Table table(header);
  double best = 0.0;
  double worst = 0.0;
  for (const double ram : rams_gb) {
    std::vector<std::string> row = {util::Table::num(ram, 0)};
    for (const double ssd : ssds_gb) {
      sim::SimConfig config;
      config.system = tiers::presets::sim_cluster(4);
      // A heavily contended PFS makes the capacity trade-off visible: the
      // question the explorer answers is how much cache absorbs it.
      config.system.pfs.agg_read_mbps =
          util::ThroughputCurve({{1, 40}, {2, 60}, {4, 80}});
      config.system.node.classes[0].capacity_mb = ram * util::kGB * scale;
      config.system.node.classes[1].capacity_mb = ssd * util::kGB * scale;
      config.seed = args.seed;
      config.num_epochs = 3;
      config.per_worker_batch = 32;
      sim::NoPFSPolicy policy;
      const sim::SimResult result = sim::simulate(config, dataset, policy);
      row.push_back(util::format_seconds(result.total_s));
      if (best == 0.0 || result.total_s < best) best = result.total_s;
      worst = std::max(worst, result.total_s);
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nspread best-to-worst: " << util::Table::num(worst / best, 2)
            << "x -- RAM and SSD are largely interchangeable once the hot set\n"
               "fits, so cheaper capacity can substitute for faster capacity\n"
               "(the paper's Fig. 9 conclusion).\n";
  return 0;
}
